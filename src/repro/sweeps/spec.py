"""The declarative sweep specification: one serializable experiment definition.

Every experiment in this repository — the Fig. 4 all-pairs adversarial
heatmap, the Figs. 10-19 application panels, the Figs. 7/8 family
samples, and any user-defined scenario — is an instance of one abstract
operation: *run a sweep over scheduler pairs (or a scheduler set) x an
instance source x restarts/samples*.  A :class:`SweepSpec` captures that
operation as a frozen, JSON-serializable value:

* ``mode="pisa"`` — one adversarial annealing search per (target,
  baseline) pair x restart (Sections VI/VII).  With a ``dynamics``
  field the objective becomes the *robustness gap* (see
  :mod:`repro.pisa.robustness`).
* ``mode="benchmark"`` — schedule ``num_instances`` sampled instances
  with every scheduler and compare makespan distributions (Section V).
* ``mode="dynamic"`` — schedule ``num_instances`` sampled instances
  with every scheduler, then replay each schedule under the spec's
  ``dynamics`` (:class:`~repro.core.dynamic.DynamicsSpec`) and compare
  realized makespans and degradation against the static plans.

Specs round-trip losslessly through JSON (:meth:`SweepSpec.to_json` /
:meth:`SweepSpec.from_json`), are schema-validated on load with
path-annotated, actionable error messages (:class:`SpecError`), and are
executed by :func:`repro.sweeps.run_sweep`, which also writes the spec
into the run directory as the checkpoint manifest — the spec *is* the
run's identity.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.dynamic.spec import DynamicsError, DynamicsSpec
from repro.pisa.annealing import AnnealingConfig
from repro.pisa.constraints import SearchConstraints
from repro.pisa.pisa import PISAConfig

__all__ = ["SPEC_VERSION", "SpecError", "SourceSpec", "SweepSpec"]

#: Version tag written into every serialized spec; bumped on breaking
#: format changes so stale spec files fail with a clear message.
SPEC_VERSION = 1

MODES = ("pisa", "benchmark", "dynamic")
SAMPLINGS = ("spawn", "sequential")
SOURCE_KINDS = ("chains", "workflow", "dataset", "family")

_REQUIRED = object()


class SpecError(ValueError):
    """A sweep spec failed validation; the message names the offending field."""


def _fail(path: str, message: str) -> None:
    raise SpecError(f"{path}: {message}")


def _type_name(value: Any) -> str:
    return type(value).__name__


def _take(
    data: dict,
    key: str,
    path: str,
    *,
    types: type | tuple[type, ...],
    default: Any = _REQUIRED,
    choices: tuple | None = None,
):
    """Pop ``data[key]``, type-check it, and apply defaults/choices."""
    if key not in data:
        if default is _REQUIRED:
            _fail(path, f"missing required field {key!r}")
        return default
    value = data.pop(key)
    # bool is an int subclass; reject it where an int/float is expected.
    if isinstance(value, bool) and bool not in (types if isinstance(types, tuple) else (types,)):
        _fail(f"{path}.{key}", f"expected {_expected_types(types)}, got bool")
    if not isinstance(value, types):
        _fail(f"{path}.{key}", f"expected {_expected_types(types)}, got {_type_name(value)}")
    if choices is not None and value not in choices:
        _fail(
            f"{path}.{key}",
            f"must be one of {', '.join(repr(c) for c in choices)}, got {value!r}",
        )
    return value


def _expected_types(types: type | tuple[type, ...]) -> str:
    if not isinstance(types, tuple):
        types = (types,)
    return " or ".join(t.__name__ for t in types)


def _reject_unknown(data: dict, path: str, known: tuple[str, ...]) -> None:
    if not data:
        return
    unknown = sorted(data)
    hints = []
    for key in unknown:
        close = difflib.get_close_matches(key, known, n=1)
        hints.append(f"{key!r}" + (f" (did you mean {close[0]!r}?)" if close else ""))
    _fail(path, f"unknown field(s): {', '.join(hints)}; valid fields: {', '.join(known)}")


def _scheduler_list(value: Any, path: str) -> tuple[str, ...]:
    if not isinstance(value, (list, tuple)):
        _fail(path, f"expected a list of scheduler names, got {_type_name(value)}")
    out: list[str] = []
    for i, item in enumerate(value):
        if not isinstance(item, str) or not item:
            _fail(f"{path}[{i}]", f"scheduler names must be non-empty strings, got {item!r}")
        if item in out:
            _fail(f"{path}[{i}]", f"duplicate scheduler {item!r}")
        out.append(item)
    return tuple(out)


# ---------------------------------------------------------------------- #
# Instance sources
# ---------------------------------------------------------------------- #
#: Per-kind option schema: name -> (types, default) with _REQUIRED defaults.
_SOURCE_SCHEMAS: dict[str, dict[str, tuple]] = {
    "chains": {
        "min_nodes": ((int,), 3),
        "max_nodes": ((int,), 5),
        "min_tasks": ((int,), 3),
        "max_tasks": ((int,), 5),
    },
    "workflow": {
        "workflow": ((str,), _REQUIRED),
        "ccr": ((int, float), _REQUIRED),
        "trace_seed": ((int,), 0),
        "min_nodes": ((int,), 4),
        "max_nodes": ((int,), 8),
    },
    "dataset": {
        "dataset": ((str,), _REQUIRED),
        "params": ((dict,), None),
    },
    "family": {
        "family": ((str,), _REQUIRED),
    },
}


@dataclass(frozen=True)
class SourceSpec:
    """Where a sweep's problem instances come from.

    ``kind`` selects the generator; ``options`` parameterize it and are
    normalized (defaults filled in) at construction:

    ``chains``
        The paper's random chain initial instances (Section VI); options
        ``min_nodes/max_nodes/min_tasks/max_tasks``.
    ``workflow``
        The Section VII application-specific space; options ``workflow``
        (recipe name), ``ccr``, ``trace_seed``, ``min_nodes/max_nodes``.
        Forces the trace-scaled perturbation set and empty constraints.
    ``dataset``
        A registered dataset generator (Table II names); options
        ``dataset`` and optional generator ``params``.  Benchmark mode
        only, sequential sampling.
    ``family``
        A registered instance family (``fig7``, ``fig8``, or
        user-registered); option ``family``.  Samples benchmark-mode
        distributions or seeds PISA initial instances.
    """

    kind: str
    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalized = self._validate(self.kind, dict(self.options), path="source")
        object.__setattr__(self, "options", normalized)

    @staticmethod
    def _validate(kind: str, options: dict, path: str) -> dict:
        if kind not in _SOURCE_SCHEMAS:
            _fail(
                f"{path}.kind",
                f"unknown instance source {kind!r}; valid kinds: {', '.join(SOURCE_KINDS)}",
            )
        schema = _SOURCE_SCHEMAS[kind]
        out: dict = {}
        for name, (types, default) in schema.items():
            out[name] = _take(options, name, path, types=types, default=default)
        _reject_unknown(options, path, ("kind", *schema))
        if kind == "chains":
            for low, high in (("min_nodes", "max_nodes"), ("min_tasks", "max_tasks")):
                if out[low] < 1:
                    _fail(f"{path}.{low}", f"must be >= 1, got {out[low]}")
                if out[high] < out[low]:
                    _fail(f"{path}.{high}", f"must be >= {low} ({out[low]}), got {out[high]}")
        elif kind == "workflow":
            out["ccr"] = float(out["ccr"])
            if out["ccr"] <= 0:
                _fail(f"{path}.ccr", f"must be positive, got {out['ccr']}")
            if out["min_nodes"] < 1:
                _fail(f"{path}.min_nodes", f"must be >= 1, got {out['min_nodes']}")
            if out["max_nodes"] < out["min_nodes"]:
                _fail(
                    f"{path}.max_nodes",
                    f"must be >= min_nodes ({out['min_nodes']}), got {out['max_nodes']}",
                )
        elif kind == "dataset" and out["params"] is not None:
            for key in out["params"]:
                if not isinstance(key, str):
                    _fail(f"{path}.params", f"parameter names must be strings, got {key!r}")
        return out

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        out = {"kind": self.kind}
        for name, value in self.options.items():
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: Any, path: str = "source") -> "SourceSpec":
        if not isinstance(data, dict):
            _fail(path, f"expected an object, got {_type_name(data)}")
        data = dict(data)
        kind = _take(data, "kind", path, types=str, choices=SOURCE_KINDS)
        try:
            return cls(kind=kind, options=data)
        except SpecError as exc:
            # __post_init__ validates with the bare "source" prefix;
            # re-anchor the message at the caller's path (e.g. the file).
            message = str(exc)
            if message.startswith("source"):
                message = path + message[len("source"):]
            raise SpecError(message) from None


# ---------------------------------------------------------------------- #
# Annealing / PISA config (de)serialization
# ---------------------------------------------------------------------- #
def _config_to_dict(config: PISAConfig) -> dict:
    ann = config.annealing
    return {
        "restarts": config.restarts,
        "keep_history": config.keep_history,
        "batch": config.batch,
        "annealing": {
            "t_max": ann.t_max,
            "t_min": ann.t_min,
            "max_iterations": ann.max_iterations,
            "alpha": ann.alpha,
            "acceptance": ann.acceptance,
        },
    }


def _config_from_dict(data: Any, path: str) -> PISAConfig:
    if not isinstance(data, dict):
        _fail(path, f"expected an object, got {_type_name(data)}")
    data = dict(data)
    restarts = _take(data, "restarts", path, types=int, default=PISAConfig().restarts)
    # Full per-iteration annealing histories for the Fig. 5/6-style
    # trajectory analyses; ratios are identical either way, so sweeps
    # default to the lean history-off work units.
    keep_history = _take(data, "keep_history", path, types=bool, default=False)
    # The speculative batched annealer is bit-identical to the serial
    # loop, so sweeps default it on; "batch": false forces the serial
    # reference path (e.g. for timing comparisons).
    batch = _take(data, "batch", path, types=bool, default=True)
    ann_data = _take(data, "annealing", path, types=dict, default=None)
    _reject_unknown(data, path, ("restarts", "keep_history", "batch", "annealing"))
    if ann_data is None:
        annealing = AnnealingConfig()
    else:
        ann_data = dict(ann_data)
        ann_path = f"{path}.annealing"
        defaults = AnnealingConfig()
        kwargs = {
            "t_max": _take(ann_data, "t_max", ann_path, types=(int, float), default=defaults.t_max),
            "t_min": _take(ann_data, "t_min", ann_path, types=(int, float), default=defaults.t_min),
            "max_iterations": _take(
                ann_data, "max_iterations", ann_path, types=int,
                default=defaults.max_iterations,
            ),
            "alpha": _take(ann_data, "alpha", ann_path, types=(int, float), default=defaults.alpha),
            "acceptance": _take(
                ann_data, "acceptance", ann_path, types=str, default=defaults.acceptance,
                choices=("paper", "metropolis"),
            ),
        }
        _reject_unknown(ann_data, ann_path, tuple(kwargs))
        try:
            annealing = AnnealingConfig(
                t_max=float(kwargs["t_max"]),
                t_min=float(kwargs["t_min"]),
                max_iterations=kwargs["max_iterations"],
                alpha=float(kwargs["alpha"]),
                acceptance=kwargs["acceptance"],
            )
        except ValueError as exc:
            _fail(ann_path, str(exc))
    try:
        return PISAConfig(
            annealing=annealing, restarts=restarts, keep_history=keep_history, batch=batch
        )
    except ValueError as exc:
        _fail(path, str(exc))
        raise AssertionError  # pragma: no cover - _fail always raises


def _constraints_to_value(constraints: SearchConstraints | None) -> Any:
    if constraints is None:
        return "auto"
    return {
        "fixed_node_speeds": constraints.fixed_node_speeds,
        "fixed_link_strengths": constraints.fixed_link_strengths,
    }


def _constraints_from_value(data: Any, path: str) -> SearchConstraints | None:
    if data == "auto" or data is None:
        return None
    if not isinstance(data, dict):
        _fail(path, f'expected "auto" or an object, got {_type_name(data)}')
    data = dict(data)
    fixed_nodes = _take(data, "fixed_node_speeds", path, types=bool, default=False)
    fixed_links = _take(data, "fixed_link_strengths", path, types=bool, default=False)
    _reject_unknown(data, path, ("fixed_node_speeds", "fixed_link_strengths"))
    return SearchConstraints(fixed_node_speeds=fixed_nodes, fixed_link_strengths=fixed_links)


# ---------------------------------------------------------------------- #
# The spec
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepSpec:
    """One declarative sweep: schedulers x instance source x restarts/samples.

    Parameters
    ----------
    name:
        Identifies the sweep (checkpoint keys, reports, run manifests).
    mode:
        ``"pisa"`` (adversarial pair search) or ``"benchmark"``
        (makespan-distribution comparison).
    schedulers:
        Scheduler names.  PISA mode sweeps every ordered pair of them
        (unless ``pairs`` is given); benchmark mode schedules every
        instance with each of them.
    pairs:
        Explicit ordered (target, baseline) pairs — PISA mode only,
        mutually exclusive with ``schedulers``.
    source:
        The instance source (:class:`SourceSpec`).
    config:
        PISA annealing + restart parameters (PISA mode).  Includes the
        opt-in ``keep_history`` flag: sweeps default to lean history-off
        work units, and trajectory analyses (Figs. 5/6) set
        ``config.keep_history = true`` to record and checkpoint every
        :class:`~repro.pisa.annealing.AnnealingStep`.
    constraints:
        ``None`` derives the Section VI homogeneity constraints from
        each pair's scheduler names ("auto"); an explicit
        :class:`SearchConstraints` overrides that (the Section VII
        app-specific sweeps pass an explicitly empty one).
    num_instances:
        Samples per sweep (benchmark mode).
    sampling:
        ``"spawn"`` gives every sample its own spawned RNG stream
        (jobs-invariant; the Figs. 7/8 protocol); ``"sequential"`` draws
        instances serially from one generator (the Figs. 10-19 benchmark
        rows and dataset sources).
    seed:
        Root seed of the sweep's RNG spawn tree.
    description:
        Free-form human note; carried through serialization.
    dynamics:
        The replay conditions (:class:`~repro.core.dynamic.DynamicsSpec`).
        Required in ``dynamic`` mode.  Optional in ``pisa`` mode, where
        it switches the annealing objective from the static makespan
        ratio to the robustness gap (target beats baseline statically
        but loses under these dynamics).  Rejected in ``benchmark`` mode.
    """

    name: str
    mode: str = "pisa"
    schedulers: tuple[str, ...] = ()
    pairs: tuple[tuple[str, str], ...] | None = None
    source: SourceSpec = field(default_factory=lambda: SourceSpec("chains"))
    config: PISAConfig = field(default_factory=PISAConfig)
    constraints: SearchConstraints | None = None
    num_instances: int = 10
    sampling: str = "spawn"
    seed: int = 0
    description: str = ""
    dynamics: DynamicsSpec | None = None

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            _fail("name", f"must be a non-empty string, got {self.name!r}")
        if self.mode not in MODES:
            _fail("mode", f"must be one of {', '.join(repr(m) for m in MODES)}, got {self.mode!r}")
        object.__setattr__(self, "schedulers", _scheduler_list(self.schedulers, "schedulers"))
        if self.pairs is not None:
            object.__setattr__(self, "pairs", self._normalize_pairs(self.pairs))
        if not isinstance(self.source, SourceSpec):
            _fail("source", f"must be a SourceSpec, got {_type_name(self.source)}")
        if isinstance(self.seed, np.integer):
            object.__setattr__(self, "seed", int(self.seed))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            _fail("seed", f"must be an integer, got {self.seed!r}")
        if isinstance(self.num_instances, np.integer):
            object.__setattr__(self, "num_instances", int(self.num_instances))
        if self.sampling not in SAMPLINGS:
            _fail(
                "sampling",
                f"must be one of {', '.join(repr(s) for s in SAMPLINGS)}, got {self.sampling!r}",
            )
        if self.dynamics is not None and not isinstance(self.dynamics, DynamicsSpec):
            _fail("dynamics", f"must be a DynamicsSpec, got {_type_name(self.dynamics)}")
        if self.mode == "pisa":
            self._validate_pisa()
        elif self.mode == "dynamic":
            self._validate_dynamic()
        else:
            self._validate_benchmark()

    @staticmethod
    def _normalize_pairs(pairs) -> tuple[tuple[str, str], ...]:
        if not isinstance(pairs, (list, tuple)):
            _fail("pairs", f"expected a list of [target, baseline] pairs, got {_type_name(pairs)}")
        out = []
        for i, pair in enumerate(pairs):
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                _fail(f"pairs[{i}]", f"expected a [target, baseline] pair, got {pair!r}")
            target, baseline = pair
            if not isinstance(target, str) or not isinstance(baseline, str):
                _fail(f"pairs[{i}]", f"scheduler names must be strings, got {pair!r}")
            if target == baseline:
                _fail(f"pairs[{i}]", f"target and baseline must differ, got {target!r} twice")
            if (target, baseline) in out:
                _fail(f"pairs[{i}]", f"duplicate pair [{target!r}, {baseline!r}]")
            out.append((target, baseline))
        if not out:
            _fail("pairs", "must list at least one [target, baseline] pair")
        return tuple(out)

    def _validate_pisa(self) -> None:
        if self.pairs is not None and self.schedulers:
            _fail(
                "pairs",
                "give either `schedulers` (sweeps every ordered pair) or explicit "
                "`pairs`, not both",
            )
        if self.pairs is None and len(self.schedulers) < 2:
            _fail(
                "schedulers",
                f"PISA mode needs at least 2 schedulers (or explicit `pairs`), "
                f"got {len(self.schedulers)}",
            )
        if self.source.kind == "dataset":
            _fail(
                "source.kind",
                'dataset sources hold fixed instances; PISA mode needs a generative '
                'source ("chains", "workflow", or "family")',
            )
        # Refuse fields the mode would silently ignore — a user who sets
        # them expects an effect.
        if self.num_instances != 10:
            _fail(
                "num_instances",
                "has no effect in PISA mode (work is pairs x config.restarts); "
                "remove it or leave it at the default",
            )
        if self.sampling != "spawn":
            _fail(
                "sampling",
                "has no effect in PISA mode (restarts always spawn their own "
                "streams); remove it or leave it at the default",
            )

    def _validate_benchmark(self) -> None:
        if self.pairs is not None:
            _fail("pairs", "explicit pairs are a PISA-mode concept; benchmark mode "
                           "compares all `schedulers` on shared instances")
        if not self.schedulers:
            _fail("schedulers", "benchmark mode needs at least 1 scheduler")
        if not isinstance(self.num_instances, int) or isinstance(self.num_instances, bool):
            _fail("num_instances", f"must be an integer, got {self.num_instances!r}")
        if self.num_instances < 1:
            _fail("num_instances", f"must be >= 1, got {self.num_instances}")
        if self.source.kind == "dataset" and self.sampling != "sequential":
            _fail(
                "sampling",
                'dataset sources generate instances sequentially; set sampling to '
                '"sequential"',
            )
        if self.config != PISAConfig():
            _fail(
                "config",
                "has no effect in benchmark mode (no annealing runs); remove it",
            )
        if self.constraints is not None:
            _fail(
                "constraints",
                "have no effect in benchmark mode (no search to constrain); "
                'remove them or use "auto"',
            )
        if self.dynamics is not None:
            _fail(
                "dynamics",
                'has no effect in benchmark mode (static makespans only); use '
                'mode "dynamic" to replay schedules under dynamics',
            )

    def _validate_dynamic(self) -> None:
        if self.pairs is not None:
            _fail("pairs", "explicit pairs are a PISA-mode concept; dynamic mode "
                           "replays all `schedulers` on shared instances")
        if not self.schedulers:
            _fail("schedulers", "dynamic mode needs at least 1 scheduler")
        if not isinstance(self.num_instances, int) or isinstance(self.num_instances, bool):
            _fail("num_instances", f"must be an integer, got {self.num_instances!r}")
        if self.num_instances < 1:
            _fail("num_instances", f"must be >= 1, got {self.num_instances}")
        if self.source.kind == "dataset" and self.sampling != "sequential":
            _fail(
                "sampling",
                'dataset sources generate instances sequentially; set sampling to '
                '"sequential"',
            )
        if self.config != PISAConfig():
            _fail(
                "config",
                "has no effect in dynamic mode (no annealing runs); remove it",
            )
        if self.constraints is not None:
            _fail(
                "constraints",
                "have no effect in dynamic mode (no search to constrain); "
                'remove them or use "auto"',
            )
        if self.dynamics is None:
            _fail(
                "dynamics",
                'dynamic mode replays schedules under a dynamics spec; add a '
                '"dynamics" object (e.g. {"contention": "fair"})',
            )

    # ------------------------------------------------------------------ #
    # The ordered pair list this spec sweeps (PISA mode).
    # ------------------------------------------------------------------ #
    def resolved_pairs(self) -> list[tuple[str, str]]:
        """(target, baseline) pairs in execution order."""
        if self.mode != "pisa":
            raise SpecError(f"spec {self.name!r} is a {self.mode} sweep; it has no pairs")
        if self.pairs is not None:
            return list(self.pairs)
        return [
            (target, baseline)
            for target in self.schedulers
            for baseline in self.schedulers
            if target != baseline
        ]

    def scheduler_names(self) -> list[str]:
        """All scheduler names the sweep touches, in matrix order."""
        if self.schedulers:
            return list(self.schedulers)
        seen: dict[str, None] = {}
        for target, baseline in self.pairs or ():
            seen.setdefault(target, None)
            seen.setdefault(baseline, None)
        return list(seen)

    def with_seed(self, seed: int) -> "SweepSpec":
        """A copy of this spec with a different root seed."""
        return replace(self, seed=seed)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """The lossless JSON-ready form of this spec."""
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "description": self.description,
            "mode": self.mode,
            "schedulers": list(self.schedulers),
            "pairs": [list(p) for p in self.pairs] if self.pairs is not None else None,
            "source": self.source.to_dict(),
            "config": _config_to_dict(self.config),
            "constraints": _constraints_to_value(self.constraints),
            "num_instances": self.num_instances,
            "sampling": self.sampling,
            "seed": self.seed,
            "dynamics": self.dynamics.to_dict() if self.dynamics is not None else None,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + ("\n" if indent else "")

    @classmethod
    def from_dict(cls, data: Any, where: str = "spec") -> "SweepSpec":
        """Build a validated spec from a plain dict; raises :class:`SpecError`."""
        if not isinstance(data, dict):
            _fail(where, f"expected a JSON object, got {_type_name(data)}")
        data = dict(data)
        version = _take(data, "version", where, types=int, default=SPEC_VERSION)
        if version != SPEC_VERSION:
            _fail(
                f"{where}.version",
                f"unsupported spec version {version} (this build reads version "
                f"{SPEC_VERSION})",
            )
        name = _take(data, "name", where, types=str)
        description = _take(data, "description", where, types=str, default="")
        mode = _take(data, "mode", where, types=str, default="pisa", choices=MODES)
        schedulers = _scheduler_list(
            _take(data, "schedulers", where, types=(list, tuple), default=()),
            f"{where}.schedulers",
        )
        raw_pairs = data.pop("pairs", None)
        source_data = _take(data, "source", where, types=dict, default=None)
        config_data = _take(data, "config", where, types=dict, default=None)
        constraints_value = data.pop("constraints", "auto")
        num_instances = _take(data, "num_instances", where, types=int, default=10)
        sampling = _take(data, "sampling", where, types=str, default="spawn", choices=SAMPLINGS)
        seed = _take(data, "seed", where, types=int, default=0)
        dynamics_data = data.pop("dynamics", None)
        _reject_unknown(
            data,
            where,
            (
                "version", "name", "description", "mode", "schedulers", "pairs",
                "source", "config", "constraints", "num_instances", "sampling", "seed",
                "dynamics",
            ),
        )
        dynamics = None
        if dynamics_data is not None:
            try:
                dynamics = DynamicsSpec.from_dict(dynamics_data, path=f"{where}.dynamics")
            except DynamicsError as exc:
                raise SpecError(str(exc)) from None
        source = (
            SourceSpec.from_dict(source_data, path=f"{where}.source")
            if source_data is not None
            else SourceSpec("chains")
        )
        config = (
            _config_from_dict(config_data, f"{where}.config")
            if config_data is not None
            else PISAConfig()
        )
        constraints = _constraints_from_value(constraints_value, f"{where}.constraints")
        try:
            return cls(
                name=name,
                mode=mode,
                schedulers=schedulers,
                pairs=raw_pairs,
                source=source,
                config=config,
                constraints=constraints,
                num_instances=num_instances,
                sampling=sampling,
                seed=seed,
                description=description,
                dynamics=dynamics,
            )
        except SpecError as exc:
            raise SpecError(f"{where}.{exc}" if not str(exc).startswith(where) else str(exc)) from None

    @classmethod
    def from_json(cls, text: str, where: str = "spec") -> "SweepSpec":
        """Parse + validate a JSON spec string; raises :class:`SpecError`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{where}: not valid JSON ({exc})") from None
        return cls.from_dict(data, where=where)

    @classmethod
    def load(cls, path: str | Path) -> "SweepSpec":
        """Read and validate a spec file; errors name the file."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise SpecError(f"cannot read sweep spec {path}: {exc}") from None
        return cls.from_json(text, where=str(path))
