"""Named sweep specs: the paper's figures as declarative definitions.

Each paper experiment is a :class:`~repro.sweeps.spec.SweepSpec` builder
here; the figure drivers in :mod:`repro.experiments` are thin wrappers
that build these specs and render reports, and the CLI exposes them via
``repro sweep show <name>`` so a figure's definition can be dumped,
edited, and re-run as a user spec.  Caveats where a dumped spec is not
the whole figure: ``fig8`` standalone uses fresh seeding while the
combined driver threads one generator through fig7 then fig8 (see
:func:`fig8_spec`), and the ``fig10_19_panel*`` entries are one panel of
the workflow x CCR grid.

Builders take ``seed``/``full`` (and, where meaningful, the same knobs
the drivers expose) and return frozen specs; the scale logic lives in
:mod:`repro.experiments.config` and is imported lazily to keep
``repro.sweeps`` importable from the experiment drivers without cycles.
"""

from __future__ import annotations

from repro.pisa.constraints import SearchConstraints
from repro.pisa.pisa import PISAConfig
from repro.sweeps.spec import SourceSpec, SpecError, SweepSpec
from repro.utils.rng import derive_seed

__all__ = [
    "fig4_spec",
    "fig7_spec",
    "fig8_spec",
    "fig10_19_pisa_spec",
    "fig10_19_bench_spec",
    "named_spec",
    "list_named_specs",
]


def _scale():
    # Lazy: repro.experiments imports repro.sweeps at module level.
    from repro.experiments import config

    return config


def fig4_spec(
    schedulers: list[str] | None = None,
    config: PISAConfig | None = None,
    seed: int = 0,
    full: bool | None = None,
) -> SweepSpec:
    """Fig. 4: PISA over every ordered pair of the 15 paper schedulers."""
    from repro.schedulers import PAPER_SCHEDULERS

    return SweepSpec(
        name="fig4",
        mode="pisa",
        schedulers=tuple(schedulers) if schedulers is not None else tuple(PAPER_SCHEDULERS),
        source=SourceSpec("chains"),
        config=config or _scale().pisa_config(full),
        constraints=None,  # Section VI homogeneity constraints, per pair
        seed=seed,
        description="Fig. 4 — adversarial pairwise heatmap (Section VI)",
    )


def _family_spec(
    family: str,
    num_instances: int | None,
    seed: int,
    full: bool | None,
    schedulers: tuple[str, ...] = ("CPoP", "HEFT"),
) -> SweepSpec:
    n = num_instances if num_instances is not None else _scale().pick(100, 1000, full)
    return SweepSpec(
        name=family,
        mode="benchmark",
        schedulers=schedulers,
        source=SourceSpec("family", {"family": family}),
        num_instances=n,
        sampling="spawn",
        seed=seed,
        description=f"Figs. 7/8 — {family} crafted instance family (Section VI-B)",
    )


def fig7_spec(
    num_instances: int | None = None, seed: int = 0, full: bool | None = None
) -> SweepSpec:
    """Fig. 7: the HEFT-adversarial fork-join family, HEFT vs CPoP.

    Bit-identical to the ``fig7_fig8`` driver's fig7 half at the same
    seed (the driver's shared generator is at its fresh position when
    fig7 samples).
    """
    return _family_spec("fig7", num_instances, seed, full)


def fig8_spec(
    num_instances: int | None = None, seed: int = 0, full: bool | None = None
) -> SweepSpec:
    """Fig. 8: the CPoP-adversarial wide fork-join family, HEFT vs CPoP.

    Standalone, this seeds fresh from ``seed``; the combined
    ``fig7_fig8`` driver instead threads one generator through both
    families (fig8's spawn positions follow fig7's — the historical,
    bit-pinned protocol), so the driver's fig8 distribution differs from
    this spec's at the same seed.  The two are statistically equivalent
    samples of the same family; only the exact streams differ.
    """
    return _family_spec("fig8", num_instances, seed, full)


def _app_schedulers(schedulers: list[str] | None) -> tuple[str, ...]:
    from repro.schedulers import APP_SPECIFIC_SCHEDULERS

    return tuple(schedulers) if schedulers is not None else tuple(APP_SPECIFIC_SCHEDULERS)


def fig10_19_pisa_spec(
    workflow: str = "srasearch",
    ccr: float = 0.2,
    schedulers: list[str] | None = None,
    config: PISAConfig | None = None,
    seed: int = 0,
    full: bool | None = None,
) -> SweepSpec:
    """One Figs. 10-19 panel's PISA matrix, restricted in-family (Section VII).

    Seeds follow the historical derivation tree (``derive_seed`` on the
    panel's root seed), so spec-based panels are bit-identical to the
    pre-spec driver outputs.
    """
    return SweepSpec(
        name=f"{workflow}_ccr{ccr}_pisa",
        mode="pisa",
        schedulers=_app_schedulers(schedulers),
        source=SourceSpec(
            "workflow",
            {
                "workflow": workflow,
                "ccr": float(ccr),
                "trace_seed": derive_seed(seed, workflow, "trace"),
            },
        ),
        config=config or _scale().pisa_config(full),
        constraints=SearchConstraints(),  # Section VII replaces the VI constraints
        seed=derive_seed(seed, workflow, ccr, "pisa"),
        description=f"Figs. 10-19 — in-family PISA panel for {workflow} at CCR {ccr}",
    )


def fig10_19_bench_spec(
    workflow: str = "srasearch",
    ccr: float = 0.2,
    schedulers: list[str] | None = None,
    bench_instances: int = 10,
    seed: int = 0,
) -> SweepSpec:
    """One Figs. 10-19 panel's benchmarking row (in-family dataset)."""
    return SweepSpec(
        name=f"{workflow}_ccr{ccr}",
        mode="benchmark",
        schedulers=_app_schedulers(schedulers),
        source=SourceSpec(
            "workflow",
            {
                "workflow": workflow,
                "ccr": float(ccr),
                "trace_seed": derive_seed(seed, workflow, "trace"),
            },
        ),
        num_instances=bench_instances,
        sampling="sequential",
        seed=derive_seed(seed, workflow, ccr, "bench"),
        description=f"Figs. 10-19 — benchmarking row for {workflow} at CCR {ccr}",
    )


def _fig10_19_panel(seed: int = 0, full: bool | None = None) -> SweepSpec:
    return fig10_19_pisa_spec(seed=seed, full=full)


def _fig10_19_panel_bench(seed: int = 0, full: bool | None = None) -> SweepSpec:
    # The benchmark row has no full-scale variant (bench_instances is a
    # driver knob); `full` is accepted for builder-signature uniformity.
    return fig10_19_bench_spec(seed=seed)


#: Name -> builder(seed=, full=) for ``repro sweep show``.  The fig10_19
#: entries are ONE panel (the srasearch / CCR 0.2 default); the full
#: Figs. 10-19 grid is a workflow x CCR family of such specs, driven by
#: ``repro experiment fig10_19`` (spec-level grids are a ROADMAP item).
_NAMED = {
    "fig4": fig4_spec,
    "fig7": fig7_spec,
    "fig8": fig8_spec,
    "fig10_19_panel": _fig10_19_panel,
    "fig10_19_panel_bench": _fig10_19_panel_bench,
}


def list_named_specs() -> list[str]:
    """Names accepted by :func:`named_spec` / ``repro sweep show``."""
    return sorted(_NAMED)


def named_spec(name: str, seed: int = 0, full: bool | None = None) -> SweepSpec:
    """Build a named paper sweep; raises :class:`SpecError` for unknown names."""
    try:
        builder = _NAMED[name]
    except KeyError:
        raise SpecError(
            f"unknown named sweep {name!r}; available: {', '.join(list_named_specs())}"
        ) from None
    return builder(seed=seed, full=full)
