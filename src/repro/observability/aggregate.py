"""Merge per-worker telemetry shards into one fleet summary.

The inverse of :mod:`repro.observability.trace`: read every
``telemetry-<worker>.jsonl`` shard of a run directory (torn-line
tolerant — a SIGKILLed worker's last buffered lines are skipped, never
fatal) and fold the records into per-worker unit counts, span-stage
totals, observed rates, and a merged ``--profile`` phase table.

Used by the ``sweep run``/``sweep work`` profile merge, the ``sweep
top`` dashboard's filesystem mode, and the CI coordinator smoke (which
cross-checks ``GET /metrics`` against the merged report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.observability.trace import TELEMETRY_GLOB
from repro.runtime.checkpoint import iter_jsonl

__all__ = [
    "TelemetrySummary",
    "WorkerTelemetry",
    "iter_telemetry_records",
    "merge_phase_tables",
    "summarize_records",
    "summarize_run_dir",
    "telemetry_shard_paths",
]

SPAN_STAGES = ("claim_s", "execute_s", "record_s", "release_s")


def telemetry_shard_paths(run_dir: str | Path) -> list[Path]:
    """Existing telemetry shards of ``run_dir``, sorted (deterministic
    merge order, like :func:`repro.runtime.checkpoint.result_file_paths`)."""
    return sorted(p for p in Path(run_dir).glob(TELEMETRY_GLOB) if p.is_file())


def iter_telemetry_records(run_dir: str | Path) -> Iterator[dict]:
    """Every well-formed telemetry record of ``run_dir``'s shards.

    Lines that are torn, unparseable, or not ``{"kind": ...}`` objects
    are skipped — telemetry is advisory, so damage narrows the summary
    instead of failing it.
    """
    for path in telemetry_shard_paths(run_dir):
        for record in iter_jsonl(path, what="telemetry"):
            if isinstance(record, dict) and isinstance(record.get("kind"), str):
                yield record


@dataclass
class WorkerTelemetry:
    """One worker's folded span/phase records."""

    worker: str
    units: int = 0
    reclaimed: int = 0
    batched: int = 0
    stage_seconds: dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in SPAN_STAGES}
    )
    first_ts: float | None = None
    last_ts: float | None = None

    @property
    def busy_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def rate(self) -> float | None:
        """Observed units/second over this worker's span window, or None
        when fewer than two spans landed (no measurable window)."""
        if self.units < 2 or self.first_ts is None or self.last_ts is None:
            return None
        window = self.last_ts - self.first_ts
        if window <= 0:
            return None
        # First span's completion opens the window, so it contributes
        # the endpoint, not the interval.
        return (self.units - 1) / window

    def to_payload(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "units": self.units,
            "reclaimed": self.reclaimed,
            "batched": self.batched,
            "stage_seconds": dict(self.stage_seconds),
            "busy_seconds": self.busy_seconds,
            "rate": self.rate,
        }


def merge_phase_tables(
    tables: Iterable[Mapping[str, Mapping[str, float]]],
) -> dict[str, dict[str, float]]:
    """Sum ``{phase: {"seconds": ..., "calls": ...}}`` tables across workers."""
    merged: dict[str, dict[str, float]] = {}
    for table in tables:
        for name, stats in table.items():
            slot = merged.setdefault(str(name), {"seconds": 0.0, "calls": 0})
            try:
                slot["seconds"] += float(stats.get("seconds", 0.0))
                slot["calls"] += int(stats.get("calls", 0))
            except (TypeError, ValueError, AttributeError):
                continue
    return {name: merged[name] for name in sorted(merged)}


@dataclass
class TelemetrySummary:
    """Fleet-wide fold of every telemetry shard in a run directory."""

    workers: dict[str, WorkerTelemetry] = field(default_factory=dict)
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    spans: int = 0

    @property
    def units(self) -> int:
        return sum(w.units for w in self.workers.values())

    @property
    def reclaimed(self) -> int:
        return sum(w.reclaimed for w in self.workers.values())

    def to_payload(self) -> dict[str, Any]:
        return {
            "spans": self.spans,
            "units": self.units,
            "reclaimed": self.reclaimed,
            "workers": {
                worker: stats.to_payload()
                for worker, stats in sorted(self.workers.items())
            },
            "phases": self.phases,
        }


def summarize_records(records: Iterable[Mapping[str, Any]]) -> TelemetrySummary:
    """Fold telemetry records (any workers, any order) into one summary."""
    summary = TelemetrySummary()
    phase_tables: list[Mapping[str, Mapping[str, float]]] = []
    for record in records:
        kind = record.get("kind")
        worker = str(record.get("worker", "<unknown>"))
        if kind == "span":
            stats = summary.workers.setdefault(worker, WorkerTelemetry(worker))
            stats.units += 1
            summary.spans += 1
            if record.get("reclaimed"):
                stats.reclaimed += 1
            if record.get("batched"):
                stats.batched += 1
            for stage in SPAN_STAGES:
                try:
                    stats.stage_seconds[stage] += float(record.get(stage, 0.0))
                except (TypeError, ValueError):
                    continue
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                if stats.first_ts is None or ts < stats.first_ts:
                    stats.first_ts = float(ts)
                if stats.last_ts is None or ts > stats.last_ts:
                    stats.last_ts = float(ts)
        elif kind == "phases":
            table = record.get("phases")
            if isinstance(table, Mapping):
                phase_tables.append(table)
    summary.phases = merge_phase_tables(phase_tables)
    return summary


def summarize_run_dir(run_dir: str | Path) -> TelemetrySummary:
    """Merge every telemetry shard of ``run_dir`` into one summary."""
    return summarize_records(iter_telemetry_records(run_dir))
