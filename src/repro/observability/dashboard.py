"""Fleet dashboard frames: collect, diff, and render (``repro sweep top``).

The dashboard is a pure fold over the two observability surfaces that
already exist — the shared status schema (``sweep status --json`` /
``GET /status``) and the telemetry layer (per-worker trace shards on the
filesystem, ``GET /metrics`` on a coordinator).  One :class:`FleetFrame`
is one poll; throughput and ETA come from the delta between consecutive
frames, so the renderer needs no history beyond the previous frame.

Both sources produce the *same* frame shape:

* **run directory** — ``inspect_run_dir`` for progress/leases plus
  :func:`~repro.observability.aggregate.summarize_run_dir` for per-worker
  span rates;
* **coordinator** — ``GET /status`` for progress/leases plus a parse of
  the Prometheus text at ``GET /metrics`` for per-worker record counts,
  reclaim/duplicate totals, and journal lag.

Everything here is read-only and zero-dependency; the CLI loop in
``repro.__main__`` just polls, diffs, and prints.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "FleetFrame",
    "collect_coordinator_frame",
    "collect_run_dir_frame",
    "parse_prometheus_text",
    "render_frame",
]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    return value.replace("\\\\", "\x00").replace('\\"', '"').replace("\\n", "\n").replace(
        "\x00", "\\"
    )


def parse_prometheus_text(
    text: str,
) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """Parse Prometheus text exposition into ``{family: {labels: value}}``.

    ``labels`` is a sorted tuple of ``(name, value)`` pairs (empty tuple
    for unlabeled samples).  Comment/HELP/TYPE lines and malformed lines
    are skipped — the dashboard degrades, it never crashes on a scrape.
    """
    families: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        labels = tuple(
            sorted(
                (name, _unescape_label(raw))
                for name, raw in _LABEL_RE.findall(match.group("labels") or "")
            )
        )
        families.setdefault(match.group("name"), {})[labels] = value
    return families


def _family_total(
    families: Mapping[str, Mapping[tuple, float]], name: str
) -> float | None:
    series = families.get(name)
    if not series:
        return None
    return sum(series.values())


@dataclass
class FleetFrame:
    """One dashboard poll — same shape from either source."""

    ts: float
    source: str  # human-readable origin ("run dir runs/x", "coordinator http://...")
    backend: str  # "filesystem" | "coordinator"
    name: str | None = None
    completed: int | None = None
    total: int | None = None
    complete: bool = False
    active_leases: int = 0
    stale_leases: int = 0
    #: worker -> cumulative completed-unit count (span count or
    #: coordinator_worker_records_total); rates come from frame deltas.
    worker_units: dict[str, int] = field(default_factory=dict)
    #: worker -> observed units/s from telemetry spans (run-dir source only).
    worker_rates: dict[str, float] = field(default_factory=dict)
    reclaimed: int = 0
    duplicates: int = 0
    journal_pending: int | None = None
    status: dict[str, Any] = field(default_factory=dict)

    def throughput(self, prev: "FleetFrame | None") -> float | None:
        """Fleet units/s from the delta against the previous frame."""
        if (
            prev is None
            or self.completed is None
            or prev.completed is None
            or self.ts <= prev.ts
        ):
            return None
        delta = self.completed - prev.completed
        if delta < 0:  # a restart reset the counter; skip this window
            return None
        return delta / (self.ts - prev.ts)

    def eta_seconds(self, prev: "FleetFrame | None") -> float | None:
        rate = self.throughput(prev)
        if rate is None or rate <= 0 or self.completed is None or self.total is None:
            return None
        return max(self.total - self.completed, 0) / rate


def _frame_from_status(payload: Mapping[str, Any], *, source: str) -> FleetFrame:
    def _int(key: str) -> int | None:
        value = payload.get(key)
        return value if isinstance(value, int) else None

    return FleetFrame(
        ts=time.time(),
        source=source,
        backend=str(payload.get("backend", "?")),
        name=payload.get("name") if isinstance(payload.get("name"), str) else None,
        completed=_int("completed_units"),
        total=_int("total_units"),
        complete=bool(payload.get("complete")),
        active_leases=len(payload.get("active_leases") or ()),
        stale_leases=len(payload.get("stale_leases") or ()),
        duplicates=_int("duplicate_records") or 0,
        status=dict(payload),
    )


def collect_run_dir_frame(run_dir: str | Path) -> FleetFrame:
    """One frame from a filesystem run directory (status + trace shards)."""
    from repro.observability.aggregate import summarize_run_dir
    from repro.runtime.checkpoint import CheckpointError
    from repro.runtime.distributed import inspect_run_dir

    run_dir = Path(run_dir)
    status = inspect_run_dir(run_dir)
    if status.kind is None and not status.shard_counts:
        # A typo'd path would otherwise render as an empty-but-plausible
        # dashboard forever; fail like `sweep status` does.
        raise CheckpointError(f"{run_dir} is not a run directory")
    frame = _frame_from_status(status.to_payload(), source=f"run dir {run_dir}")
    summary = summarize_run_dir(run_dir)
    for worker, stats in summary.workers.items():
        frame.worker_units[worker] = stats.units
        if stats.rate is not None:
            frame.worker_rates[worker] = stats.rate
    frame.reclaimed = summary.reclaimed
    return frame


def collect_coordinator_frame(url: str, *, retry_timeout: float = 5.0) -> FleetFrame:
    """One frame from a live coordinator (``GET /status`` + ``GET /metrics``)."""
    from repro.runtime.backends import HttpWorkBackend

    client = HttpWorkBackend(url, retry_timeout=retry_timeout)
    frame = _frame_from_status(client.status(), source=f"coordinator {url}")
    families = parse_prometheus_text(client.metrics_text())
    for labels, value in families.get("coordinator_worker_records_total", {}).items():
        worker = dict(labels).get("worker")
        if worker:
            frame.worker_units[worker] = int(value)
    reclaimed = _family_total(families, "coordinator_claims_reclaimed_total")
    if reclaimed is not None:
        frame.reclaimed = int(reclaimed)
    duplicates = _family_total(families, "coordinator_duplicate_records_total")
    if duplicates is not None:
        frame.duplicates = int(duplicates)
    pending = _family_total(families, "coordinator_journal_pending_events")
    if pending is not None:
        frame.journal_pending = int(pending)
    return frame


def _fmt_rate(rate: float | None) -> str:
    if rate is None:
        return "-"
    if rate >= 100:
        return f"{rate:.0f}/s"
    return f"{rate:.2f}/s" if rate < 10 else f"{rate:.1f}/s"


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_frame(frame: FleetFrame, prev: FleetFrame | None = None) -> str:
    """Render one dashboard frame as plain text.

    ``prev`` (the previous poll) powers throughput/ETA and per-worker
    rate deltas; the first frame renders with those columns blank.
    """
    lines: list[str] = []
    title = frame.name or "sweep"
    lines.append(f"{title} — {frame.source} [{frame.backend}]")
    if frame.completed is not None and frame.total:
        pct = 100.0 * frame.completed / frame.total
        bar_width = 30
        filled = int(bar_width * min(frame.completed / frame.total, 1.0))
        bar = "#" * filled + "-" * (bar_width - filled)
        lines.append(
            f"  progress  [{bar}] {frame.completed}/{frame.total} ({pct:.1f}%)"
            + ("  COMPLETE" if frame.complete else "")
        )
    else:
        lines.append(f"  progress  {frame.completed if frame.completed is not None else '?'} units")
    throughput = frame.throughput(prev)
    lines.append(
        f"  throughput {_fmt_rate(throughput)}   eta {_fmt_eta(frame.eta_seconds(prev))}   "
        f"leases {frame.active_leases} active"
        + (f" / {frame.stale_leases} stale" if frame.stale_leases else "")
    )
    counters = f"  reclaims {frame.reclaimed}   duplicates {frame.duplicates}"
    if frame.journal_pending is not None:
        counters += f"   journal lag {frame.journal_pending} event(s)"
    lines.append(counters)
    if frame.worker_units:
        lines.append("  workers:")
        prev_units = prev.worker_units if prev is not None else {}
        window = (frame.ts - prev.ts) if prev is not None else 0.0
        for worker in sorted(frame.worker_units):
            units = frame.worker_units[worker]
            rate = frame.worker_rates.get(worker)
            if rate is None and prev is not None and window > 0 and worker in prev_units:
                delta = units - prev_units[worker]
                rate = delta / window if delta >= 0 else None
            lines.append(f"    {worker:<32} units {units:>6}   rate {_fmt_rate(rate)}")
    return "\n".join(lines)
