"""Thread-safe metrics registry with Prometheus text exposition.

Stdlib-only (no ``prometheus_client``): the runtime needs exactly three
instrument kinds — labeled counters, gauges, and fixed-bucket
histograms — and one output format, the Prometheus text exposition
format (version 0.0.4) that ``GET /metrics`` on the coordinator serves
and any Prometheus-compatible scraper ingests.

Design constraints, in order:

* **Hot-path cheap.**  ``inc``/``observe`` is one lock acquire and a
  dict update.  Label resolution (``labels(...)``) returns a child
  handle that callers cache, so steady-state recording never re-hashes
  label tuples.  The coordinator records per-op latency on every HTTP
  request and fsync latency inside the group-commit leader; the
  benchmark gate in ``benchmarks/bench_runtime.py`` bounds the total
  telemetry overhead on the coordinator scaling curve at ≤5%.
* **Thread-safe.**  Instruments are written from coordinator executor
  threads, the asyncio loop, worker drain threads, and heartbeat
  daemons.  Each instrument owns one lock; there is no global registry
  lock on the record path.
* **Inert.**  Nothing here touches RNG streams or result bytes —
  metrics are observations about work, never inputs to it.

Registries are instances, not module globals, so the coordinator can own
one per ``Coordinator`` (a standby promotes with a fresh registry seeded
from recovered state — see ``Coordinator._recover``) while workers share
the process-global :func:`global_registry`.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Seconds buckets wide enough for both sub-millisecond fsyncs and
#: multi-second unit executions.
DEFAULT_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name: {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name may not start with a digit: {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _render_labels(labelnames: tuple[str, ...], labelvalues: tuple[str, ...], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Instrument:
    """Shared plumbing: name/help/labels, child table, one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _validate_name(label)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, *labelvalues: object, **labelkw: object) -> "_Instrument":
        """Resolve (and memoize) the child for one label combination."""
        if labelkw:
            if labelvalues:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                labelvalues = tuple(labelkw[name] for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"missing label {exc} for metric {self.name}") from None
        values = tuple(str(v) for v in labelvalues)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name} expects labels {self.labelnames}, got {values!r}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child(values)
                self._children[values] = child
            return child  # type: ignore[return-value]

    def _make_child(self, labelvalues: tuple[str, ...]) -> object:
        raise NotImplementedError

    def _samples(self) -> list[str]:
        raise NotImplementedError

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        lines.extend(self._samples())
        return "\n".join(lines)


class Counter(_Instrument):
    """Monotonically increasing count, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    class _Child:
        __slots__ = ("_parent", "_labelvalues", "value")

        def __init__(self, parent: "Counter", labelvalues: tuple[str, ...]) -> None:
            self._parent = parent
            self._labelvalues = labelvalues
            self.value = 0.0

        def inc(self, amount: float = 1.0) -> None:
            if amount < 0:
                raise ValueError("counters only go up")
            with self._parent._lock:
                self.value += amount

    def _make_child(self, labelvalues: tuple[str, ...]) -> "Counter._Child":
        return Counter._Child(self, labelvalues)

    def inc(self, amount: float = 1.0) -> None:
        if self.labelnames:
            raise ValueError(f"metric {self.name} is labeled; call .labels(...) first")
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    def value(self, *labelvalues: object) -> float:
        if labelvalues:
            return self.labels(*labelvalues).value  # type: ignore[union-attr]
        with self._lock:
            return self._value

    def _samples(self) -> list[str]:
        with self._lock:
            if self.labelnames:
                return [
                    f"{self.name}{_render_labels(self.labelnames, values)} "
                    f"{_format_value(child.value)}"
                    for values, child in sorted(self._children.items())
                ]
            return [f"{self.name} {_format_value(self._value)}"]


class Gauge(_Instrument):
    """A value that can go up and down, optionally labeled."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    class _Child:
        __slots__ = ("_parent", "_labelvalues", "value")

        def __init__(self, parent: "Gauge", labelvalues: tuple[str, ...]) -> None:
            self._parent = parent
            self._labelvalues = labelvalues
            self.value = 0.0

        def set(self, value: float) -> None:
            with self._parent._lock:
                self.value = float(value)

        def inc(self, amount: float = 1.0) -> None:
            with self._parent._lock:
                self.value += amount

        def dec(self, amount: float = 1.0) -> None:
            with self._parent._lock:
                self.value -= amount

    def _make_child(self, labelvalues: tuple[str, ...]) -> "Gauge._Child":
        return Gauge._Child(self, labelvalues)

    def set(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"metric {self.name} is labeled; call .labels(...) first")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def value(self, *labelvalues: object) -> float:
        if labelvalues:
            return self.labels(*labelvalues).value  # type: ignore[union-attr]
        with self._lock:
            return self._value

    def _samples(self) -> list[str]:
        with self._lock:
            if self.labelnames:
                return [
                    f"{self.name}{_render_labels(self.labelnames, values)} "
                    f"{_format_value(child.value)}"
                    for values, child in sorted(self._children.items())
                ]
            return [f"{self.name} {_format_value(self._value)}"]


class Histogram(_Instrument):
    """Fixed-bucket histogram (cumulative ``le`` buckets + sum + count)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: > max bound (+Inf)
        self._sum = 0.0
        self._count = 0

    class _Child:
        __slots__ = ("_parent", "_labelvalues", "counts", "sum", "count")

        def __init__(self, parent: "Histogram", labelvalues: tuple[str, ...]) -> None:
            self._parent = parent
            self._labelvalues = labelvalues
            self.counts = [0] * (len(parent.bounds) + 1)
            self.sum = 0.0
            self.count = 0

        def observe(self, value: float) -> None:
            parent = self._parent
            with parent._lock:
                self.counts[parent._bucket_index(value)] += 1
                self.sum += value
                self.count += 1

    def _make_child(self, labelvalues: tuple[str, ...]) -> "Histogram._Child":
        return Histogram._Child(self, labelvalues)

    def _bucket_index(self, value: float) -> int:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)

    def observe(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"metric {self.name} is labeled; call .labels(...) first")
        with self._lock:
            self._counts[self._bucket_index(value)] += 1
            self._sum += value
            self._count += 1

    def count(self, *labelvalues: object) -> int:
        if labelvalues:
            return self.labels(*labelvalues).count  # type: ignore[union-attr]
        with self._lock:
            return self._count

    def total(self, *labelvalues: object) -> float:
        if labelvalues:
            return self.labels(*labelvalues).sum  # type: ignore[union-attr]
        with self._lock:
            return self._sum

    def _render_series(
        self, labelvalues: tuple[str, ...], counts: list[int], total: float, count: int
    ) -> list[str]:
        lines = []
        cumulative = 0
        for bound, n in zip(self.bounds, counts):
            cumulative += n
            le = _format_value(bound)
            labels = _render_labels(self.labelnames, labelvalues, f'le="{le}"')
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        cumulative += counts[-1]
        labels = _render_labels(self.labelnames, labelvalues, 'le="+Inf"')
        lines.append(f"{self.name}_bucket{labels} {cumulative}")
        suffix = _render_labels(self.labelnames, labelvalues)
        lines.append(f"{self.name}_sum{suffix} {_format_value(total)}")
        lines.append(f"{self.name}_count{suffix} {count}")
        return lines

    def _samples(self) -> list[str]:
        with self._lock:
            if self.labelnames:
                lines: list[str] = []
                for values, child in sorted(self._children.items()):
                    lines.extend(
                        self._render_series(values, child.counts, child.sum, child.count)
                    )
                return lines
            return self._render_series((), self._counts, self._sum, self._count)


class MetricsRegistry:
    """A named collection of instruments with one text-exposition output.

    ``counter``/``gauge``/``histogram`` are get-or-create: re-registering
    the same name returns the existing instrument (and raises if the kind
    or labels differ — two call sites silently sharing a name with
    different schemas is a bug worth failing loudly on).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls: type, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with a different schema"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def render_prometheus(self) -> str:
        """The full registry in Prometheus text exposition format 0.0.4."""
        with self._lock:
            instruments = [self._instruments[name] for name in sorted(self._instruments)]
        return "\n".join(i.render() for i in instruments) + "\n" if instruments else ""

    def record_phases(self, snapshot: Mapping[str, Mapping[str, float]]) -> None:
        """Bridge a ``repro.utils.phases`` snapshot into the registry.

        The annealing hot loop records through the phase accumulators
        (one branch when disabled); this folds those totals into
        ``repro_phase_seconds_total`` / ``repro_phase_calls_total``
        without adding a second instrumentation seam to the hot path.
        """
        seconds = self.counter(
            "repro_phase_seconds_total", "Seconds spent per instrumented phase.", ("phase",)
        )
        calls = self.counter(
            "repro_phase_calls_total", "Calls per instrumented phase.", ("phase",)
        )
        for phase, stats in snapshot.items():
            seconds.labels(phase).inc(float(stats.get("seconds", 0.0)))
            calls.labels(phase).inc(float(stats.get("calls", 0)))


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-global registry workers and backends record into."""
    return _GLOBAL
