"""Zero-dependency fleet telemetry: metrics, trace spans, aggregation.

The runtime records *what the fleet is doing* through three seams, none
of which touch RNG streams or result bytes (telemetry is provably inert;
``tests/test_observability.py`` pins bit-identity with telemetry on vs
off on every backend):

* :mod:`repro.observability.metrics` — a thread-safe registry of labeled
  counters, gauges, and fixed-bucket histograms with a Prometheus text
  exposition renderer.  The coordinator serves its registry at
  ``GET /metrics``; workers record into a process-global registry.
* :mod:`repro.observability.trace` — per-unit trace spans
  (claim → execute → record → release) appended to per-worker
  ``telemetry-<worker>.jsonl`` shards in the run directory, plus
  per-worker phase-accumulator dumps (``repro.utils.phases``) that let
  ``--profile`` work at any ``--jobs`` and on remote backends.
* :mod:`repro.observability.aggregate` — torn-line-tolerant merge of the
  telemetry shards into a fleet summary (per-worker rates, span phase
  totals, merged profile).

``repro sweep top`` (see ``repro.__main__``) is the live dashboard built
on these: it polls status + metrics on an interval and renders
throughput, ETA, per-worker rates, and reclaim/duplicate counts against
either a run directory or a live coordinator.
"""

from __future__ import annotations

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.observability.trace import (
    TELEMETRY_GLOB,
    TelemetryWriter,
    telemetry_enabled,
    telemetry_shard_path,
)
from repro.observability.aggregate import (
    TelemetrySummary,
    iter_telemetry_records,
    summarize_run_dir,
    summarize_records,
)
from repro.observability.dashboard import (
    FleetFrame,
    collect_coordinator_frame,
    collect_run_dir_frame,
    parse_prometheus_text,
    render_frame,
)

__all__ = [
    "FleetFrame",
    "collect_coordinator_frame",
    "collect_run_dir_frame",
    "parse_prometheus_text",
    "render_frame",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "TELEMETRY_GLOB",
    "TelemetryWriter",
    "telemetry_enabled",
    "telemetry_shard_path",
    "TelemetrySummary",
    "iter_telemetry_records",
    "summarize_run_dir",
    "summarize_records",
]
