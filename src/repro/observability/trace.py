"""Per-unit trace spans and per-worker phase dumps.

Every worker that drains units appends telemetry records to its own
``telemetry-<worker>.jsonl`` shard in the run directory — the same
one-writer-per-file rule, torn-tail repair, and torn-line-tolerant
reader (:mod:`repro.runtime.checkpoint`) as the result shards, so a
SIGKILLed worker can tear at most its last buffered lines and never
corrupts anyone else's telemetry.  The shards are an *output artifact*
of the run: ``repro sweep top`` and the ``--profile`` merge read them,
and they survive for post-hoc analysis.

Record kinds (one JSON object per line, ``"v": 1``):

``span``
    One completed work unit: ``{"kind": "span", "unit": key, "worker":
    id, "ts": wall-clock end time, "claim_s": ..., "execute_s": ...,
    "record_s": ..., "release_s": ..., "reclaimed": bool, "batched":
    bool}`` — the claim → execute → record → release lifecycle with
    per-stage wall seconds.
``phases``
    One worker's ``repro.utils.phases`` accumulator snapshot
    (``{"compile": {"seconds": ..., "calls": ...}, ...}``), serialized
    when the worker finishes draining.  This is what lifts the old
    ``--profile`` single-process restriction: every worker process dumps
    its own accumulators and the parent merges the shards.
``event``
    Free-form worker lifecycle notes (``{"kind": "event", "event":
    name, ...}``), currently ``drain_start`` / ``drain_end``.

Telemetry is **inert by construction**: records are derived from
``time.time()``/``perf_counter`` and already-committed results; nothing
here reads or advances an RNG stream or alters result bytes.  Disable it
entirely with ``REPRO_TELEMETRY=0`` — ``tests/test_observability.py``
pins that the merged sweep results are bit-identical either way.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from repro.runtime.checkpoint import append_jsonl_many, safe_filename

__all__ = [
    "TELEMETRY_GLOB",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryWriter",
    "profile_requested",
    "telemetry_enabled",
    "telemetry_shard_path",
]

#: Glob matching per-worker telemetry shards next to the result shards.
TELEMETRY_GLOB = "telemetry-*.jsonl"

#: Bumped when record fields change incompatibly.
TELEMETRY_SCHEMA_VERSION = 1

#: Spans buffered per writer before one append_jsonl_many flush.  A
#: killed worker loses at most this many *telemetry* lines (results have
#: their own durability); the batching keeps the per-unit overhead to a
#: dict build + list append on all but every Nth unit.
FLUSH_EVERY = 16

_FALSEY = {"0", "false", "off", "no"}


def telemetry_enabled() -> bool:
    """Telemetry is on unless ``REPRO_TELEMETRY`` says otherwise."""
    return os.environ.get("REPRO_TELEMETRY", "1").strip().lower() not in _FALSEY


def profile_requested() -> bool:
    """True when ``--profile`` asked every worker for phase accounting.

    Carried in the environment (``REPRO_PROFILE=1``) so it survives both
    fork and spawn into pool children and ``sweep work`` processes.
    """
    return os.environ.get("REPRO_PROFILE", "").strip().lower() not in ("", *_FALSEY)


def telemetry_shard_path(run_dir: str | Path, worker_id: str) -> Path:
    """This worker's telemetry shard in ``run_dir``."""
    return Path(run_dir) / f"telemetry-{safe_filename(worker_id)}.jsonl"


class TelemetryWriter:
    """Buffered appender of telemetry records for ONE worker's shard.

    Thread-safe (the drain loop and its heartbeat daemon may both
    record); flushes every :data:`FLUSH_EVERY` records and on
    :meth:`close`.  All write errors are swallowed after logging-free
    best effort — telemetry must never fail a unit that already
    executed.
    """

    def __init__(self, run_dir: str | Path, worker_id: str) -> None:
        self.path = telemetry_shard_path(run_dir, worker_id)
        self.worker_id = worker_id
        self._lock = threading.Lock()
        self._buffer: list[dict[str, Any]] = []
        self._closed = False

    @classmethod
    def open(cls, run_dir: str | Path | None, worker_id: str) -> "TelemetryWriter | None":
        """A writer for ``run_dir``, or None when telemetry is off or
        there is nowhere to write (no run directory)."""
        if run_dir is None or not telemetry_enabled():
            return None
        try:
            return cls(run_dir, worker_id)
        except OSError:
            return None

    # ------------------------------------------------------------------ #
    def _append(self, record: dict[str, Any]) -> None:
        with self._lock:
            if self._closed:
                return
            self._buffer.append(record)
            if len(self._buffer) < FLUSH_EVERY:
                return
            buffered, self._buffer = self._buffer, []
        self._write(buffered)

    def _write(self, records: list[dict[str, Any]]) -> None:
        if not records:
            return
        try:
            append_jsonl_many(self.path, records)
        except OSError:
            # Telemetry loss is acceptable; losing the unit is not.
            pass

    def flush(self) -> None:
        with self._lock:
            buffered, self._buffer = self._buffer, []
        self._write(buffered)

    def close(self) -> None:
        with self._lock:
            buffered, self._buffer = self._buffer, []
            self._closed = True
        self._write(buffered)

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def span(
        self,
        unit: str,
        *,
        claim_s: float,
        execute_s: float,
        record_s: float,
        release_s: float,
        reclaimed: bool = False,
        batched: bool = False,
    ) -> None:
        """Record one unit's claim → execute → record → release span."""
        self._append(
            {
                "kind": "span",
                "v": TELEMETRY_SCHEMA_VERSION,
                "unit": unit,
                "worker": self.worker_id,
                "ts": time.time(),
                "claim_s": round(claim_s, 9),
                "execute_s": round(execute_s, 9),
                "record_s": round(record_s, 9),
                "release_s": round(release_s, 9),
                "reclaimed": bool(reclaimed),
                "batched": bool(batched),
            }
        )

    def phases(self, snapshot: Mapping[str, Mapping[str, float]]) -> None:
        """Record this worker's phase-accumulator snapshot (may be empty)."""
        self._append(
            {
                "kind": "phases",
                "v": TELEMETRY_SCHEMA_VERSION,
                "worker": self.worker_id,
                "ts": time.time(),
                "phases": {
                    name: {
                        "seconds": float(stats.get("seconds", 0.0)),
                        "calls": int(stats.get("calls", 0)),
                    }
                    for name, stats in snapshot.items()
                },
            }
        )

    def event(self, event: str, **fields: Any) -> None:
        """Record a worker lifecycle event (``drain_start``/``drain_end``)."""
        record: dict[str, Any] = {
            "kind": "event",
            "v": TELEMETRY_SCHEMA_VERSION,
            "event": event,
            "worker": self.worker_id,
            "ts": time.time(),
        }
        record.update(fields)
        self._append(record)
