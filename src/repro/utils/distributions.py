"""Weight distributions used throughout the paper.

Almost every random quantity in the paper is drawn from a *clipped Gaussian*:
"node/edge-weights drawn from a clipped gaussian distribution (mean: 1,
standard deviation: 1/3, min: 0, max: 2)" (Section IV-B), and the Fig. 7/8
instance families use clipped Gaussians with other parameters.

``LogNormalModel`` plays the role of the distribution the authors fit to the
Chameleon execution-trace machine speeds (Section IV-B); we cannot access
those traces offline, so the model is parameterized synthetically (see
DESIGN.md substitution #3) and exposes the same fit/sample interface a
trace-backed model would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["clipped_gaussian", "clipped_gaussian_array", "LogNormalModel"]


def clipped_gaussian(
    rng: np.random.Generator,
    mean: float,
    std: float,
    low: float = 0.0,
    high: float = float("inf"),
) -> float:
    """Draw one sample from a Gaussian and clip it into ``[low, high]``.

    The paper clips (rather than truncates/resamples); a draw below ``low``
    is reported as exactly ``low``.  This matters for Fig. 7/8, where the
    min-0 clip occasionally produces zero-cost tasks.
    """
    if std < 0:
        raise ValueError("std must be non-negative")
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    value = rng.normal(mean, std) if std > 0 else mean
    return float(min(max(value, low), high))


def clipped_gaussian_array(
    rng: np.random.Generator,
    mean: float,
    std: float,
    size: int,
    low: float = 0.0,
    high: float = float("inf"),
) -> np.ndarray:
    """Vectorized :func:`clipped_gaussian` (used by the Fig. 7/8 families)."""
    if std < 0:
        raise ValueError("std must be non-negative")
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    values = rng.normal(mean, std, size=size) if std > 0 else np.full(size, float(mean))
    return np.clip(values, low, high)


@dataclass(frozen=True)
class LogNormalModel:
    """A log-normal distribution with the fit/sample interface of a trace model.

    ``fit`` mirrors what the authors do with WfCommons Chameleon traces:
    estimate a distribution from observed samples, then draw new values from
    it to build random networks.  We use the standard method-of-moments fit
    in log space.
    """

    mu: float
    sigma: float

    @classmethod
    def fit(cls, samples: "np.ndarray | list[float]") -> "LogNormalModel":
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("cannot fit LogNormalModel to zero samples")
        if np.any(arr <= 0):
            raise ValueError("log-normal fit requires strictly positive samples")
        logs = np.log(arr)
        sigma = float(np.std(logs)) if arr.size > 1 else 0.0
        return cls(mu=float(np.mean(logs)), sigma=sigma)

    def sample(self, rng: int | np.random.Generator | None, size: int | None = None):
        gen = as_generator(rng)
        if self.sigma == 0.0:
            base = np.exp(self.mu)
            if size is None:
                return float(base)
            return np.full(size, base)
        out = gen.lognormal(self.mu, self.sigma, size=size)
        return float(out) if size is None else out

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu + self.sigma**2 / 2.0))
