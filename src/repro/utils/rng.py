"""Deterministic random-number plumbing.

The paper's experiments (benchmark dataset generation, PISA annealing runs,
the Fig. 7/8 instance families) are all stochastic.  To make the whole
reproduction replayable, every function in this package that needs
randomness accepts a ``rng`` argument which may be

* ``None`` — a fresh, OS-seeded generator (non-reproducible, for interactive
  use only),
* an ``int`` seed, or
* an existing :class:`numpy.random.Generator`, used as-is.

``spawn`` derives independent child generators so that, e.g., each of the
five PISA restarts gets its own stream and inserting an extra draw in one
restart cannot perturb the others.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["as_generator", "spawn", "derive_seed"]


def as_generator(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS entropy), an integer seed, or an existing
        generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot coerce {type(rng).__name__!r} into a Generator")


def spawn(rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    gen = as_generator(rng)
    return [np.random.default_rng(s) for s in gen.spawn(n)] if hasattr(gen, "spawn") else [
        np.random.default_rng(gen.integers(0, 2**63 - 1)) for _ in range(n)
    ]


def derive_seed(base: int, *labels: str | int) -> int:
    """Derive a stable 63-bit seed from a base seed and a label path.

    Used to give every (dataset, instance index) and every (scheduler pair,
    restart index) its own reproducible stream without threading generator
    objects through every layer.
    """
    h = hashlib.sha256()
    h.update(str(int(base)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "big") & (2**63 - 1)
