"""Opt-in phase timers for ``repro sweep run --profile``.

Hot-loop code records where time goes — compile / schedule / perturb —
through module-level accumulators that cost one attribute load and a
branch when disabled:

    from repro.utils import phases
    ...
    t0 = perf_counter() if phases.enabled else 0.0
    work()
    if phases.enabled:
        phases.add("schedule", perf_counter() - t0)

The accumulators are process-local; the sweep runner enables them only
for single-process runs (``jobs=1``) where the totals are meaningful.
"""

from __future__ import annotations

__all__ = ["enabled", "enable", "disable", "reset", "add", "snapshot"]

#: Read directly by instrumented hot paths; toggle via enable()/disable().
enabled = False

_totals: dict[str, float] = {}
_counts: dict[str, int] = {}


def enable() -> None:
    """Turn phase accounting on (leaves accumulated totals in place)."""
    global enabled
    enabled = True


def disable() -> None:
    global enabled
    enabled = False


def reset() -> None:
    """Zero the accumulators (does not change the enabled flag)."""
    _totals.clear()
    _counts.clear()


def add(name: str, seconds: float) -> None:
    """Accumulate ``seconds`` under phase ``name``."""
    _totals[name] = _totals.get(name, 0.0) + seconds
    _counts[name] = _counts.get(name, 0) + 1


def snapshot() -> dict[str, dict[str, float]]:
    """``{phase: {"seconds": total, "calls": n}}``, sorted by phase name."""
    return {
        name: {"seconds": _totals[name], "calls": _counts[name]} for name in sorted(_totals)
    }
