"""Opt-in phase timers for ``repro sweep run --profile``.

Hot-loop code records where time goes — compile / schedule / perturb —
through module-level accumulators that cost one attribute load and a
branch when disabled:

    from repro.utils import phases
    ...
    t0 = perf_counter() if phases.enabled else 0.0
    work()
    if phases.enabled:
        phases.add("schedule", perf_counter() - t0)

The accumulators are process-local but **not** thread-local:
instrumented code can run on coordinator executor threads and the
heartbeat daemon, so :func:`add` updates under a lock — an
unsynchronized read-modify-write on the module dicts would silently
drop concurrent updates and corrupt ``--profile`` totals.  The
``enabled`` read in the hot path stays lock-free (a stale read costs at
most one mis-skipped sample around a toggle, never a lost one).
"""

from __future__ import annotations

import threading

__all__ = ["enabled", "enable", "disable", "reset", "add", "snapshot"]

#: Read directly by instrumented hot paths; toggle via enable()/disable().
enabled = False

_lock = threading.Lock()
_totals: dict[str, float] = {}
_counts: dict[str, int] = {}


def enable() -> None:
    """Turn phase accounting on (leaves accumulated totals in place)."""
    global enabled
    enabled = True


def disable() -> None:
    global enabled
    enabled = False


def reset() -> None:
    """Zero the accumulators (does not change the enabled flag)."""
    with _lock:
        _totals.clear()
        _counts.clear()


def add(name: str, seconds: float) -> None:
    """Accumulate ``seconds`` under phase ``name`` (thread-safe)."""
    with _lock:
        _totals[name] = _totals.get(name, 0.0) + seconds
        _counts[name] = _counts.get(name, 0) + 1


def snapshot() -> dict[str, dict[str, float]]:
    """``{phase: {"seconds": total, "calls": n}}``, sorted by phase name."""
    with _lock:
        return {
            name: {"seconds": _totals[name], "calls": _counts[name]}
            for name in sorted(_totals)
        }
