"""Topological helpers over :class:`networkx.DiGraph` task graphs.

These are used by the list schedulers (deterministic topological orders),
the PISA *Add Dependency* perturbation (cycle check), and the BruteForce /
SMT schedulers (enumeration of linear extensions).
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable, Iterator
from itertools import count

import networkx as nx

__all__ = [
    "topological_order",
    "is_dag_after_edge",
    "all_linear_extensions",
    "longest_path_length",
]


def topological_order(graph: nx.DiGraph) -> list[Hashable]:
    """A deterministic topological order (lexicographic tie-breaking).

    ``networkx.topological_sort`` is insertion-order dependent; schedulers
    such as MCT/OLB process tasks "in arbitrary order", and for
    reproducibility our arbitrary order is the lexicographically smallest
    topological order.  (Kahn's algorithm over a ``(str(node), counter)``
    heap, exactly networkx's tie-breaking: nodes sharing a ``str()`` key
    leave in heap-arrival order, and the nodes themselves are never
    compared.  The result equals
    ``nx.lexicographical_topological_sort(graph, key=str)`` at a fraction
    of its overhead; it sits on the compiled scheduling hot path.)
    """
    pred, succ = graph.pred, graph.succ
    remaining = {n: len(pred[n]) for n in graph}
    arrival = count()
    heap = [(str(n), next(arrival), n) for n, d in remaining.items() if d == 0]
    heapq.heapify(heap)
    out: list[Hashable] = []
    while heap:
        _, _, node = heapq.heappop(heap)
        out.append(node)
        for succ_node in succ[node]:
            remaining[succ_node] -= 1
            if remaining[succ_node] == 0:
                heapq.heappush(heap, (str(succ_node), next(arrival), succ_node))
    if len(out) != len(remaining):
        raise nx.NetworkXUnfeasible("Graph contains a cycle.")
    return out


def is_dag_after_edge(graph: nx.DiGraph, u: Hashable, v: Hashable) -> bool:
    """Would adding edge ``u -> v`` keep ``graph`` acyclic?

    Equivalent to: there is no path from ``v`` to ``u``.  Used by PISA's
    *Add Dependency* perturbation, which must only propose acyclic graphs.
    """
    if u == v:
        return False
    if graph.has_edge(u, v):
        return True  # already present; re-adding cannot create a cycle
    return not nx.has_path(graph, v, u)


def all_linear_extensions(graph: nx.DiGraph) -> Iterator[tuple[Hashable, ...]]:
    """Yield every linear extension (valid topological order) of ``graph``.

    Exponential; used only by the BruteForce scheduler on tiny instances.
    The enumeration is deterministic (candidates visited in sorted order).
    """
    in_deg = {n: graph.in_degree(n) for n in graph.nodes}
    order: list[Hashable] = []

    def backtrack() -> Iterator[tuple[Hashable, ...]]:
        if len(order) == len(in_deg):
            yield tuple(order)
            return
        ready = sorted((n for n, d in in_deg.items() if d == 0), key=str)
        for node in ready:
            in_deg[node] = -1  # mark scheduled
            for succ in graph.successors(node):
                in_deg[succ] -= 1
            order.append(node)
            yield from backtrack()
            order.pop()
            for succ in graph.successors(node):
                in_deg[succ] += 1
            in_deg[node] = 0

    yield from backtrack()


def longest_path_length(
    graph: nx.DiGraph,
    node_weight: dict[Hashable, float],
    edge_weight: dict[tuple[Hashable, Hashable], float] | None = None,
) -> float:
    """Length of the heaviest path: sum of node weights plus edge weights.

    This is the classic critical-path length used by CPoP's priority
    metric (with average execution/communication times as weights).
    Runs in O(V + E) over a topological order.
    """
    edge_weight = edge_weight or {}
    best: dict[Hashable, float] = {}
    total = 0.0
    for node in nx.topological_sort(graph):
        incoming = [
            best[p] + edge_weight.get((p, node), 0.0) for p in graph.predecessors(node)
        ]
        best[node] = node_weight.get(node, 0.0) + (max(incoming) if incoming else 0.0)
        total = max(total, best[node])
    return total
