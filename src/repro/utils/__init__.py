"""Shared utilities: RNG plumbing, distributions, topological helpers.

These are deliberately small and dependency-light.  Everything that consumes
randomness in this package takes an explicit :class:`numpy.random.Generator`
(see :mod:`repro.utils.rng`) so that every experiment in the paper can be
reproduced bit-for-bit from a seed.
"""

from repro.utils.rng import as_generator, spawn, derive_seed
from repro.utils.distributions import clipped_gaussian, clipped_gaussian_array, LogNormalModel
from repro.utils.topo import (
    topological_order,
    is_dag_after_edge,
    all_linear_extensions,
    longest_path_length,
)

__all__ = [
    "as_generator",
    "spawn",
    "derive_seed",
    "clipped_gaussian",
    "clipped_gaussian_array",
    "LogNormalModel",
    "topological_order",
    "is_dag_after_edge",
    "all_linear_extensions",
    "longest_path_length",
]
