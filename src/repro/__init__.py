"""repro — reproduction of "PISA: An Adversarial Approach to Comparing
Task Graph Scheduling Algorithms" (Coleman & Krishnamachari, IPPS 2025).

The package contains the two systems the paper describes:

* **SAGA** (Sections II, IV, V): the task-scheduling framework — problem
  model (:mod:`repro.core`), 17 scheduler implementations
  (:mod:`repro.schedulers`), 16 dataset generators (:mod:`repro.datasets`)
  and a benchmarking harness (:mod:`repro.benchmarking`).
* **PISA** (Sections VI, VII): the simulated-annealing adversarial
  instance finder (:mod:`repro.pisa`).

Quickstart
----------
>>> from repro import TaskGraph, Network, ProblemInstance, get_scheduler
>>> tg = TaskGraph.from_dicts(
...     {"A": 1.0, "B": 2.0}, {("A", "B"): 1.0})
>>> net = Network.homogeneous(2, speed=1.0, strength=1.0)
>>> schedule = get_scheduler("HEFT").schedule(ProblemInstance(net, tg))
>>> schedule.makespan
3.0
"""

from repro.core import (
    ReproError,
    InvalidInstanceError,
    InvalidScheduleError,
    SchedulingError,
    DatasetError,
    TaskGraph,
    Network,
    ProblemInstance,
    Schedule,
    ScheduledTask,
    ScheduleBuilder,
    Scheduler,
    SchedulerInfo,
    get_scheduler,
    list_schedulers,
    scheduler_registry,
)

# Importing the subpackage registers all 17 algorithms.
from repro.schedulers import PAPER_SCHEDULERS, APP_SPECIFIC_SCHEDULERS

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "SchedulingError",
    "DatasetError",
    "TaskGraph",
    "Network",
    "ProblemInstance",
    "Schedule",
    "ScheduledTask",
    "ScheduleBuilder",
    "Scheduler",
    "SchedulerInfo",
    "get_scheduler",
    "list_schedulers",
    "scheduler_registry",
    "PAPER_SCHEDULERS",
    "APP_SPECIFIC_SCHEDULERS",
    "__version__",
]
