"""Garbage collection for checkpoint run directories.

Long sweeps leave run directories behind (``manifest.json`` +
``units.jsonl``); completed ones are dead weight once their results are
consumed, and interrupted ones go stale when nobody resumes them.  This
module scans a directory tree for run directories, classifies them, and
(optionally) removes the collectable ones.  The CLI front end is
``repro runs gc`` — dry-run by default, ``--delete`` to actually remove.

A directory is a *run directory* iff it contains a ``manifest.json``
that parses to an object with a string ``"kind"`` field (every runtime
manifest has one), or an unreadable ``manifest.json`` next to unit
results (``units.jsonl`` or ``units-*.jsonl`` shards — a damaged run).
A bare ``manifest.json`` of some other tool (a browser extension, a web
app) matches neither rule, so ``gc`` never classifies — let alone
deletes — unrelated directories.  The unit count recorded by the runtime
manifests (``"units"``) is compared with the distinct completed records
across ``units.jsonl`` *and* every distributed worker shard to decide
completeness; manifests lacking a unit count are never treated as
complete (only as stale).

gc is **lease-aware**: a run directory whose ``leases/`` holds a live
lease (heartbeat younger than the lease's TTL) has a worker actively
executing units in it, possibly on another host — such directories are
never collected, whatever their age or completeness looks like from
here.  Expired leases (a crashed worker's leftovers) do not protect a
directory, but they do count toward its idle age.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass
from pathlib import Path

from repro.runtime.checkpoint import (
    RunCheckpoint,
    journal_segments,
    journal_snapshots,
    result_file_paths,
)
from repro.runtime.distributed import LEASES_DIR, inspect_run_dir

__all__ = ["RunStatus", "scan_runs", "collectable", "gc_runs"]


@dataclass
class RunStatus:
    """One run directory's identity and progress."""

    path: Path
    kind: str | None  # manifest "kind" ("sweep", "pairwise", ...)
    name: str | None  # sweep spec name, when the manifest is a spec
    total_units: int | None  # expected units, when the manifest records it
    completed_units: int  # distinct unit keys across units.jsonl + shards
    age_seconds: float  # since the run directory last changed
    active_leases: int = 0  # live distributed workers (fresh heartbeats)
    stale_leases: int = 0  # expired/torn leases from dead workers
    delete_failed: bool = False  # rmtree was attempted but the dir survived

    @property
    def complete(self) -> bool:
        return self.total_units is not None and self.completed_units >= self.total_units

    def describe(self) -> str:
        label = self.name or self.kind or "run"
        if self.total_units is not None:
            progress = f"{self.completed_units}/{self.total_units} units"
            state = "complete" if self.complete else "incomplete"
        else:
            progress = f"{self.completed_units} units"
            state = "unknown total"
        hours = self.age_seconds / 3600.0
        out = f"{self.path} [{label}] {state}, {progress}, idle {hours:.1f}h"
        if self.active_leases:
            out += f", {self.active_leases} live worker lease(s)"
        return out


def _status(run_dir: Path, now: float) -> RunStatus | None:
    """Inspect one run directory; None if it vanished or is not ours.

    ``None`` for directories whose ``manifest.json`` does not look like a
    runtime manifest (no string ``"kind"``) and that have no unit
    results — some other tool's manifest, never to be touched.

    The inspection itself (manifest identity, deduplicated completed
    count across shards, lease liveness) is
    :func:`repro.runtime.distributed.inspect_run_dir` — the same snapshot
    ``repro sweep status`` renders, so the two tools cannot drift apart.
    gc adds only the is-this-ours gate and the idle-age computation.
    """
    snapshot = inspect_run_dir(run_dir, now=now)
    result_paths = result_file_paths(run_dir)
    if snapshot.kind is None and not result_paths:
        # No runtime manifest and no unit results: some other tool's
        # directory (or vanished mid-scan) — never to be touched.
        return None
    mtimes = []
    lease_paths = sorted((run_dir / LEASES_DIR).glob("*.json"))
    # Coordinator journal segments and snapshots are part of the run's
    # resumable state: a coordinator actively rolling its journal keeps
    # the directory's idle age at ~0 even between result-shard flushes,
    # and a freshly snapshotted-but-unconsumed run is not "stale".
    journal_paths = [path for _, path in journal_segments(run_dir)]
    journal_paths += [path for _, path in journal_snapshots(run_dir)]
    for path in [
        run_dir / RunCheckpoint.MANIFEST_NAME,
        *result_paths,
        *lease_paths,
        *journal_paths,
    ]:
        try:
            mtimes.append(path.stat().st_mtime)
        except OSError:
            pass
    if not mtimes:
        return None  # everything vanished mid-scan
    return RunStatus(
        path=run_dir,
        kind=snapshot.kind,
        name=snapshot.name,
        total_units=snapshot.total_units,
        completed_units=snapshot.completed_units,
        age_seconds=max(now - max(mtimes), 0.0),
        active_leases=snapshot.live_lease_count,
        stale_leases=len(snapshot.stale_leases) + (snapshot.torn_leases - snapshot.torn_live),
    )


def scan_runs(root: str | Path, now: float | None = None) -> list[RunStatus]:
    """All run directories under ``root`` (``root`` itself included)."""
    root = Path(root)
    now = time.time() if now is None else now
    if not root.exists():
        return []
    out = []
    candidates = [root] if (root / RunCheckpoint.MANIFEST_NAME).is_file() else []
    candidates += [
        p.parent for p in sorted(root.rglob(RunCheckpoint.MANIFEST_NAME)) if p.is_file()
    ]
    seen = set()
    for run_dir in candidates:
        if run_dir in seen:
            continue
        seen.add(run_dir)
        status = _status(run_dir, now)
        if status is not None:
            out.append(status)
    return out


def collectable(
    status: RunStatus, *, completed: bool = True, stale_seconds: float | None = None
) -> bool:
    """Whether ``status`` should be garbage-collected.

    ``completed`` collects finished runs; ``stale_seconds`` additionally
    collects *incomplete* runs idle longer than the threshold (``None``
    never collects incomplete runs — resuming them is the point of the
    checkpoint layer).  A run with a live worker lease is never
    collectable: some worker — possibly on another host — is executing
    units in it right now.
    """
    if status.active_leases > 0:
        return False
    if status.complete:
        return completed
    return stale_seconds is not None and status.age_seconds > stale_seconds


def gc_runs(
    root: str | Path,
    *,
    completed: bool = True,
    stale_seconds: float | None = None,
    delete: bool = False,
    now: float | None = None,
) -> tuple[list[RunStatus], list[RunStatus]]:
    """Scan ``root`` and return ``(collect, keep)`` run lists.

    With ``delete=True`` the collectable run directories are removed
    (``shutil.rmtree``); the default is a dry run that only reports.
    A collectable run directory nested inside another collectable one is
    reported but not removed separately (its parent's removal covers it),
    and a collectable directory that *contains* a kept run is kept too —
    removing it would destroy the nested resumable checkpoint.
    """
    statuses = scan_runs(root, now=now)
    collect = [
        s for s in statuses
        if collectable(s, completed=completed, stale_seconds=stale_seconds)
    ]
    keep = [s for s in statuses if s not in collect]
    # A kept run nested under a collectable one pins its ancestors.
    pinned = [
        s for s in collect
        if any(s.path in kept.path.parents for kept in keep)
    ]
    collect = [s for s in collect if s not in pinned]
    keep += pinned
    if delete:
        removed_roots: list[Path] = []
        # Shallowest first, so a parent's rmtree covers its nested runs.
        for status in sorted(collect, key=lambda s: len(s.path.parts)):
            if any(root_path in status.path.parents for root_path in removed_roots):
                continue
            shutil.rmtree(status.path, ignore_errors=True)
            removed_roots.append(status.path)
        # Report honestly: a directory that survived rmtree (permissions,
        # read-only mount) was not removed, whatever we intended.  Failed
        # removals move to ``keep`` flagged ``delete_failed`` so callers
        # can distinguish them from deliberately kept runs.
        failed = [s for s in collect if s.path.exists()]
        if failed:
            collect = [s for s in collect if s not in failed]
            for status in failed:
                status.delete_failed = True
            keep += failed
    return collect, keep
