"""Garbage collection for checkpoint run directories.

Long sweeps leave run directories behind (``manifest.json`` +
``units.jsonl``); completed ones are dead weight once their results are
consumed, and interrupted ones go stale when nobody resumes them.  This
module scans a directory tree for run directories, classifies them, and
(optionally) removes the collectable ones.  The CLI front end is
``repro runs gc`` — dry-run by default, ``--delete`` to actually remove.

A directory is a *run directory* iff it contains a ``manifest.json``
that parses to an object with a string ``"kind"`` field (every runtime
manifest has one), or an unreadable ``manifest.json`` next to a
``units.jsonl`` (a damaged run).  A bare ``manifest.json`` of some other
tool (a browser extension, a web app) matches neither rule, so ``gc``
never classifies — let alone deletes — unrelated directories.  The unit
count recorded by the runtime manifests (``"units"``) is compared with
the completed records in ``units.jsonl`` to decide completeness;
manifests lacking a unit count are never treated as complete (only as
stale).
"""

from __future__ import annotations

import json
import shutil
import time
from dataclasses import dataclass
from pathlib import Path

from repro.runtime.checkpoint import RunCheckpoint

__all__ = ["RunStatus", "scan_runs", "collectable", "gc_runs"]


@dataclass
class RunStatus:
    """One run directory's identity and progress."""

    path: Path
    kind: str | None  # manifest "kind" ("sweep", "pairwise", ...)
    name: str | None  # sweep spec name, when the manifest is a spec
    total_units: int | None  # expected units, when the manifest records it
    completed_units: int  # lines in units.jsonl
    age_seconds: float  # since the run directory last changed
    delete_failed: bool = False  # rmtree was attempted but the dir survived

    @property
    def complete(self) -> bool:
        return self.total_units is not None and self.completed_units >= self.total_units

    def describe(self) -> str:
        label = self.name or self.kind or "run"
        if self.total_units is not None:
            progress = f"{self.completed_units}/{self.total_units} units"
            state = "complete" if self.complete else "incomplete"
        else:
            progress = f"{self.completed_units} units"
            state = "unknown total"
        hours = self.age_seconds / 3600.0
        return f"{self.path} [{label}] {state}, {progress}, idle {hours:.1f}h"


def _status(run_dir: Path, now: float) -> RunStatus | None:
    """Inspect one run directory; None if it vanished or is not ours.

    ``None`` for directories whose ``manifest.json`` does not look like a
    runtime manifest (no string ``"kind"``) and that have no
    ``units.jsonl`` — some other tool's manifest, never to be touched.
    """
    manifest_path = run_dir / RunCheckpoint.MANIFEST_NAME
    units_path = run_dir / RunCheckpoint.UNITS_NAME
    kind = name = None
    total = None
    try:
        text = manifest_path.read_text()
        mtimes = [manifest_path.stat().st_mtime]
        manifest = None
        try:
            manifest = json.loads(text)
        except json.JSONDecodeError:
            pass  # damaged run; units.jsonl decides below whether it is ours
    except OSError:
        # Vanished mid-scan, or unreadable: only a units.jsonl sibling
        # proves this was a run directory (the documented damaged-run rule).
        if not units_path.exists():
            return None
        manifest = None
        try:
            mtimes = [manifest_path.stat().st_mtime]
        except OSError:
            mtimes = [units_path.stat().st_mtime]
    if isinstance(manifest, dict):
        kind = manifest.get("kind")
        units = manifest.get("units")
        total = units if isinstance(units, int) else None
        spec = manifest.get("spec")
        if isinstance(spec, dict) and isinstance(spec.get("name"), str):
            name = spec["name"]
    if not isinstance(kind, str):
        if not units_path.exists():
            return None  # not a runtime run directory
        kind = None  # damaged run: units.jsonl proves it is ours
    completed = 0
    try:
        # Count the records the checkpoint layer would actually resume
        # from: parseable lines with a unit key.  A torn final line (the
        # interrupted-write case completed() tolerates) must not count,
        # or an interrupted run is misclassified complete and collected.
        keys = set()
        for line in units_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "key" in record:
                keys.add(record["key"])
        completed = len(keys)
        mtimes.append(units_path.stat().st_mtime)
    except OSError:
        pass  # no units.jsonl yet (or it vanished): zero completed units
    return RunStatus(
        path=run_dir,
        kind=kind,
        name=name,
        total_units=total,
        completed_units=completed,
        age_seconds=max(now - max(mtimes), 0.0),
    )


def scan_runs(root: str | Path, now: float | None = None) -> list[RunStatus]:
    """All run directories under ``root`` (``root`` itself included)."""
    root = Path(root)
    now = time.time() if now is None else now
    if not root.exists():
        return []
    out = []
    candidates = [root] if (root / RunCheckpoint.MANIFEST_NAME).is_file() else []
    candidates += [
        p.parent for p in sorted(root.rglob(RunCheckpoint.MANIFEST_NAME)) if p.is_file()
    ]
    seen = set()
    for run_dir in candidates:
        if run_dir in seen:
            continue
        seen.add(run_dir)
        status = _status(run_dir, now)
        if status is not None:
            out.append(status)
    return out


def collectable(
    status: RunStatus, *, completed: bool = True, stale_seconds: float | None = None
) -> bool:
    """Whether ``status`` should be garbage-collected.

    ``completed`` collects finished runs; ``stale_seconds`` additionally
    collects *incomplete* runs idle longer than the threshold (``None``
    never collects incomplete runs — resuming them is the point of the
    checkpoint layer).
    """
    if status.complete:
        return completed
    return stale_seconds is not None and status.age_seconds > stale_seconds


def gc_runs(
    root: str | Path,
    *,
    completed: bool = True,
    stale_seconds: float | None = None,
    delete: bool = False,
    now: float | None = None,
) -> tuple[list[RunStatus], list[RunStatus]]:
    """Scan ``root`` and return ``(collect, keep)`` run lists.

    With ``delete=True`` the collectable run directories are removed
    (``shutil.rmtree``); the default is a dry run that only reports.
    A collectable run directory nested inside another collectable one is
    reported but not removed separately (its parent's removal covers it),
    and a collectable directory that *contains* a kept run is kept too —
    removing it would destroy the nested resumable checkpoint.
    """
    statuses = scan_runs(root, now=now)
    collect = [
        s for s in statuses
        if collectable(s, completed=completed, stale_seconds=stale_seconds)
    ]
    keep = [s for s in statuses if s not in collect]
    # A kept run nested under a collectable one pins its ancestors.
    pinned = [
        s for s in collect
        if any(s.path in kept.path.parents for kept in keep)
    ]
    collect = [s for s in collect if s not in pinned]
    keep += pinned
    if delete:
        removed_roots: list[Path] = []
        # Shallowest first, so a parent's rmtree covers its nested runs.
        for status in sorted(collect, key=lambda s: len(s.path.parts)):
            if any(root_path in status.path.parents for root_path in removed_roots):
                continue
            shutil.rmtree(status.path, ignore_errors=True)
            removed_roots.append(status.path)
        # Report honestly: a directory that survived rmtree (permissions,
        # read-only mount) was not removed, whatever we intended.  Failed
        # removals move to ``keep`` flagged ``delete_failed`` so callers
        # can distinguish them from deliberately kept runs.
        failed = [s for s in collect if s.path.exists()]
        if failed:
            collect = [s for s in collect if s not in failed]
            for status in failed:
                status.delete_failed = True
            keep += failed
    return collect, keep
