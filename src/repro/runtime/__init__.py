"""Parallel experiment runtime: work units, process pools, checkpoints.

The paper's headline sweeps (Fig. 4's 210 scheduler pairs x 5 restarts,
the Figs. 10-19 per-application panels, the Figs. 7/8 family samples)
decompose into independent *work units*, each carrying its own spawned
RNG stream.  This package executes such unit collections serially or
over a process pool, streams results back as they complete, and
checkpoints finished units to a JSON-lines run directory so interrupted
sweeps resume instead of restarting.  Multi-host coordination comes in
two transports behind one ``WorkBackend`` seam (``backends.py``): the
shared-run-directory lease protocol (``distributed.py``) and the HTTP
coordinator (``coordinator.py``) for fleets with no shared filesystem.
See README.md in this directory for the work-unit / checkpoint /
coordination model.
"""

from repro.runtime.backends import (
    CoordinatorError,
    CoordinatorProtocolError,
    FilesystemWorkBackend,
    HttpWorkBackend,
    WorkBackend,
)
from repro.runtime.checkpoint import CheckpointError, RunCheckpoint
from repro.runtime.coordinator import (
    Coordinator,
    CoordinatorHTTPServer,
    running_coordinator,
    serve_coordinator,
)
from repro.runtime.distributed import (
    DEFAULT_LEASE_TTL,
    STATUS_SCHEMA_VERSION,
    Lease,
    LeaseDir,
    RunDirStatus,
    WorkerStats,
    drain_units,
    inspect_run_dir,
    render_status_payload,
    run_units_coordinator,
    run_units_distributed,
    worker_identity,
)
from repro.runtime.executor import default_jobs, run_units
from repro.runtime.gc import RunStatus, gc_runs, scan_runs
from repro.runtime.pairwise import (
    PairwiseUnitResult,
    aggregate_pair_sweep,
    decode_unit_result,
    encode_unit_result,
    pair_sweep_units,
    run_pair_sweep,
    run_pairwise,
    run_pairwise_unit,
    run_pisa_restarts,
    unit_key,
)
from repro.runtime.units import WorkUnit

__all__ = [
    "WorkUnit",
    "RunCheckpoint",
    "CheckpointError",
    "run_units",
    "default_jobs",
    "run_pairwise",
    "run_pair_sweep",
    "pair_sweep_units",
    "aggregate_pair_sweep",
    "run_pairwise_unit",
    "run_pisa_restarts",
    "PairwiseUnitResult",
    "encode_unit_result",
    "decode_unit_result",
    "unit_key",
    "RunStatus",
    "scan_runs",
    "gc_runs",
    "DEFAULT_LEASE_TTL",
    "STATUS_SCHEMA_VERSION",
    "Lease",
    "LeaseDir",
    "RunDirStatus",
    "WorkerStats",
    "drain_units",
    "inspect_run_dir",
    "render_status_payload",
    "run_units_distributed",
    "run_units_coordinator",
    "worker_identity",
    "WorkBackend",
    "FilesystemWorkBackend",
    "HttpWorkBackend",
    "CoordinatorError",
    "CoordinatorProtocolError",
    "Coordinator",
    "CoordinatorHTTPServer",
    "serve_coordinator",
    "running_coordinator",
]
