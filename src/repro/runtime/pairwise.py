"""Pairwise PISA sweeps on the work-unit runtime (Fig. 4, Figs. 10-19).

The unit of work is one *(target, baseline, restart)* annealing run —
the finest grain at which the paper's experiment decomposes without
changing its semantics.  Seeding follows a two-level spawn tree rooted
at the sweep's seed:

    root ── spawn(#pairs) ──> pair generator ── spawn(restarts) ──> unit

:meth:`repro.pisa.pisa.PISA.run` uses exactly the same per-restart spawn
for its serial path, so for a fixed seed the sweep produces bit-identical
ratios at any ``jobs`` and across interrupt/resume boundaries.

Checkpointed unit results keep the adversarial instance (via
``ProblemInstance.to_dict``) and the summary statistics of the annealing
run.  Work units run history-off by default (``PISAConfig.keep_history``
is False), so JSONL records are lean; runs that opt into full histories
for the Fig. 5/6 trajectory analyses get them serialized and restored
across resume boundaries too.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.instance import ProblemInstance
from repro.pisa.annealing import AnnealingResult, AnnealingStep
from repro.pisa.constraints import SearchConstraints
from repro.pisa.perturbations import PerturbationSet
from repro.pisa.pisa import PISA, PairwiseResult, PISAConfig, PISAResult
from repro.runtime.checkpoint import RunCheckpoint
from repro.runtime.executor import run_units
from repro.runtime.units import WorkUnit
from repro.utils.rng import as_generator, spawn

__all__ = [
    "PairwiseUnitResult",
    "run_pairwise_unit",
    "run_pisa_restarts",
    "run_pairwise",
    "run_pair_sweep",
    "pair_sweep_units",
    "aggregate_pair_sweep",
    "unit_key",
]


def unit_key(target: str, baseline: str, restart: int) -> str:
    """Checkpoint key of one (target, baseline, restart) unit."""
    return f"{target}|{baseline}|r{restart}"


@dataclass
class PairwiseUnitResult:
    """Outcome of one unit: one annealing restart of one scheduler pair."""

    target: str
    baseline: str
    restart: int
    annealing: AnnealingResult


def run_pairwise_unit(unit: WorkUnit) -> PairwiseUnitResult:
    """Worker: execute one (pair, restart) unit on its own RNG stream."""
    pisa, restart = unit.payload
    return PairwiseUnitResult(
        target=pisa.target.name,
        baseline=pisa.baseline.name,
        restart=restart,
        annealing=pisa.run_restart(unit.rng),
    )


def run_pisa_restarts(
    pisa: PISA, gens: list[np.random.Generator], jobs: int = 1
) -> list[AnnealingResult]:
    """Execute one pair's restarts (each on its own generator) in parallel."""
    units = [
        WorkUnit(key=f"r{i}", payload=(pisa, i), rng=gen) for i, gen in enumerate(gens)
    ]
    results = run_units(units, run_pairwise_unit, jobs=jobs)
    return [results[f"r{i}"].annealing for i in range(len(gens))]


# ---------------------------------------------------------------------- #
# Checkpoint encoding
# ---------------------------------------------------------------------- #
def encode_unit_result(result: PairwiseUnitResult) -> dict:
    """JSON payload of a unit result.

    Work units run history-off by default, so most records stay lean;
    when a run opts into ``keep_history`` (``PISAConfig.keep_history`` /
    the spec's ``config.keep_history``) the per-iteration steps are
    serialized too, so resumed trajectory runs keep their full fidelity.
    """
    ann = result.annealing
    payload = {
        "target": result.target,
        "baseline": result.baseline,
        "restart": result.restart,
        "best_energy": ann.best_energy,
        "initial_energy": ann.initial_energy,
        "iterations": ann.iterations,
        "best_instance": ann.best_state.to_dict(),
    }
    if ann.history:
        payload["history"] = [asdict(step) for step in ann.history]
    return payload


def decode_unit_result(payload: dict) -> PairwiseUnitResult:
    return PairwiseUnitResult(
        target=payload["target"],
        baseline=payload["baseline"],
        restart=payload["restart"],
        annealing=AnnealingResult(
            best_state=ProblemInstance.from_dict(payload["best_instance"]),
            best_energy=payload["best_energy"],
            initial_energy=payload["initial_energy"],
            iterations=payload["iterations"],
            history=[AnnealingStep(**step) for step in payload.get("history", ())],
        ),
    )


# ---------------------------------------------------------------------- #
# The sweep core: (pair, restart) units over the two-level spawn tree
# ---------------------------------------------------------------------- #
def pair_sweep_units(
    pairs: list[tuple[str, str, PISA]],
    restarts: int,
    rng: int | np.random.Generator | None = None,
) -> list[WorkUnit]:
    """The (pair, restart) unit list of a pairwise sweep, streams spawned.

    This function *is* the seeding contract: every entry point — the
    local executor, the declarative spec runner, and distributed workers
    reconstructing the sweep from a run manifest on another host — builds
    units through it, so the same pair list and seed always yield the
    same per-unit RNG streams (and therefore bit-identical results).
    """
    gen = as_generator(rng)
    units: list[WorkUnit] = []
    for (target, baseline, pisa), pair_gen in zip(pairs, spawn(gen, len(pairs))):
        for restart, restart_gen in enumerate(spawn(pair_gen, restarts)):
            key = unit_key(target, baseline, restart)
            units.append(WorkUnit(key=key, payload=(pisa, restart), rng=restart_gen))
    return units


def aggregate_pair_sweep(
    pairs: list[tuple[str, str, PISA]],
    restarts: int,
    unit_results: dict[str, PairwiseUnitResult],
    schedulers: list[str],
) -> PairwiseResult:
    """Fold completed unit results back into a :class:`PairwiseResult`."""
    out = PairwiseResult(schedulers=list(schedulers))
    for target, baseline, pisa in pairs:
        pair_restarts = [
            unit_results[unit_key(target, baseline, r)].annealing for r in range(restarts)
        ]
        out.results[(target, baseline)] = PISAResult.from_restarts(
            pisa.target.name, pisa.baseline.name, pair_restarts
        )
    return out


def run_pair_sweep(
    pairs: list[tuple[str, str, PISA]],
    restarts: int,
    rng: int | np.random.Generator | None = None,
    *,
    schedulers: list[str],
    jobs: int = 1,
    checkpoint: RunCheckpoint | None = None,
    progress: Callable[[str, str, float], None] | None = None,
) -> PairwiseResult:
    """Execute configured ``(target, baseline, PISA)`` pairs as a unit sweep.

    This is the shared core behind :func:`run_pairwise` (scheduler-set
    sweeps) and :func:`repro.sweeps.run_sweep` (declarative specs): it
    owns the two-level spawn tree, the unit keys, and the aggregation
    into a :class:`~repro.pisa.pisa.PairwiseResult` — so every entry
    point produces bit-identical matrices for the same pair list and
    seed.  The caller owns checkpoint initialization (the manifest is
    what distinguishes the entry points).
    """
    units = pair_sweep_units(pairs, restarts, rng)
    key_to_pair = {
        unit_key(target, baseline, restart): (target, baseline)
        for target, baseline, _ in pairs
        for restart in range(restarts)
    }

    on_result = None
    if progress is not None:
        collected: dict[tuple[str, str], dict[int, AnnealingResult]] = {
            (t, b): {} for t, b, _ in pairs
        }

        def on_result(unit: WorkUnit, result: PairwiseUnitResult, cached: bool) -> None:
            pair = key_to_pair[unit.key]
            collected[pair][result.restart] = result.annealing
            if len(collected[pair]) == restarts:
                best = max(collected[pair][r].best_energy for r in range(restarts))
                progress(pair[0], pair[1], best)

    unit_results = run_units(
        units, run_pairwise_unit, jobs=jobs, checkpoint=checkpoint, on_result=on_result
    )
    return aggregate_pair_sweep(pairs, restarts, unit_results, schedulers)


# ---------------------------------------------------------------------- #
# The all-ordered-pairs sweep over a scheduler set
# ---------------------------------------------------------------------- #
def run_pairwise(
    schedulers: list[str],
    config: PISAConfig | None = None,
    rng: int | np.random.Generator | None = None,
    perturbations: PerturbationSet | None = None,
    initial_factory: Callable[[np.random.Generator], ProblemInstance] | None = None,
    constraints: SearchConstraints | None = None,
    progress: Callable[[str, str, float], None] | None = None,
    jobs: int = 1,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
) -> PairwiseResult:
    """PISA over every ordered pair of ``schedulers`` as a unit sweep.

    ``progress(target, baseline, ratio)`` fires when a pair's last
    restart completes (including pairs restored from a checkpoint).
    """
    config = config or PISAConfig()
    seed = int(rng) if isinstance(rng, (int, np.integer)) else None
    gen = as_generator(rng)

    pairs: list[tuple[str, str, PISA]] = []
    for target in schedulers:
        for baseline in schedulers:
            if target == baseline:
                continue
            pairs.append(
                (
                    target,
                    baseline,
                    PISA(
                        target,
                        baseline,
                        perturbations=perturbations,
                        config=config,
                        initial_factory=initial_factory,
                        constraints=constraints,
                    ),
                )
            )

    checkpoint = None
    if checkpoint_dir is not None:
        checkpoint = RunCheckpoint(
            checkpoint_dir, encode=encode_unit_result, decode=decode_unit_result
        )
        manifest = {
            "kind": "pairwise",
            "schedulers": [str(s) for s in schedulers],
            "restarts": config.restarts,
            "annealing": asdict(config.annealing),
            "seed": seed,
            "units": len(pairs) * config.restarts,
        }
        checkpoint.initialize(manifest, resume=resume)

    return run_pair_sweep(
        pairs,
        config.restarts,
        gen,
        schedulers=[str(s) for s in schedulers],
        jobs=jobs,
        checkpoint=checkpoint,
        progress=progress,
    )
