"""The HTTP coordinator: multi-host sweeps without a shared filesystem.

``repro sweep serve <run_dir>`` turns one run directory into a network
service.  Workers anywhere (``repro sweep work --coordinator
http://host:port``) drain the sweep through the JSON wire protocol of
:mod:`repro.runtime.backends`; only the coordinator machine ever touches
the run directory.

Design:

**One clock.**  The coordinator owns the lease table in memory and
judges TTL staleness on its own monotonic clock — the cross-host
clock-skew gymnastics of the filesystem protocol (observer-local
unchanged-for-TTL watches) collapse to ``now - heartbeat > ttl``.

**Ownership tokens.**  Every granted lease carries a random token; renew,
release, and record must present it.  An expired lease is re-granted
under a *fresh* token, so a stalled worker that wakes up cannot clobber
the new holder — its renewals and releases are rejected as stale (the
HTTP analogue of the filesystem protocol's atomic-rename steal).

**Record before release, exactly once.**  A result is durably appended to
the recording worker's shard in the run directory (and journaled) before
the coordinator acknowledges it; the worker releases its lease only
after that acknowledgement.  A duplicate record — a stalled worker
finishing a unit someone re-executed — is dropped server-side
(first writer wins; both are bit-identical because every unit owns a
deterministic RNG stream), so the shards on disk never need merge-time
deduplication, though the merged read tolerates it anyway.

**Write-ahead journal with group commit.**  Every lease state transition
(claim, expire, release, record) is appended to the active journal
segment in the run directory and **fsynced before it is acknowledged**.
The fsync is amortized: transitions enqueue their journal line under the
state lock (so journal order equals state order), then the first waiter
to reach the commit path drains the whole queue with one
write+flush+fsync while later arrivals block on a condition — N
concurrent transitions cost one disk flush, not N
(:class:`_GroupCommitJournal`).  A SIGKILLed coordinator restarts
losslessly: the lease table and completion set replay from the journal
(heartbeats reset to the restart instant, granting in-flight holders one
fresh TTL of grace — the same direction the filesystem protocol errs).
The journal is read with the shared torn-line-tolerant reader, so a line
torn by the kill is skipped, not fatal: the worst case is one lease
forgotten, which a worker simply re-claims.

**Segmented journal + snapshots: O(live) restart.**  A single
append-only journal makes restart replay O(entire sweep history) — a
million-unit sweep would turn the lossless restart from milliseconds
into minutes.  The journal therefore *rolls*: when the active segment
crosses ``segment_bytes``, the triggering operation seals it, switches
appends to ``coordinator.<seq+1>.jsonl``, and — once every sealed event
is durable — publishes an atomic ``snapshot.<seq>.json`` holding the
full coordinator state (completion set, shard counts, lease table with
tokens, and a manifest hash binding the snapshot to this experiment).
Restart loads the newest *valid* snapshot and replays only the segments
after it: O(live state), not O(history).  A torn or mismatched snapshot
falls back to the previous one, ultimately to a full replay of every
surviving segment; segments covered by the two newest snapshots are
reaped, so the fallback chain is always intact on disk.  Replay is
prefix-idempotent (claims overwrite, releases/expiries pop, records are
guarded), so a snapshot that includes effects of a not-yet-acknowledged
event is safe — the event's replay on top of it converges to the same
state.

**Warm standby.**  The snapshot + segment chain is exactly what a
second process needs to take over: ``repro sweep serve --standby``
(:func:`standby_coordinator`) watches the primary — advisory lease
fresh *or* port accepting connections means alive — and on primary
death replays the chain and binds the same port.  Ownership tokens
survive in the snapshot/journal, so in-flight workers' renewals keep
working across the handoff, and ``HttpWorkBackend``'s reconnect probe
rejoins the new primary transparently.

**Restored leases are flagged.**  After any restart every surviving
lease's heartbeat resets to the restart instant, so ``GET /status``
would report ``heartbeat_age ≈ 0`` for workers that died during the
outage.  Leases rebuilt from snapshot/journal therefore carry
``"restored": true`` in the status payload until their first real
renewal (or a holder re-claim) proves the worker alive.

**Batched claims.**  ``POST /claim-batch`` leases up to N units to one
worker under a single ownership token and a single journal record;
``/renew-batch`` and ``/release-batch`` cover the unfinished remainder
in one round trip each.  Members keep individual rows in the lease
table and are dropped one by one as their ``/record`` calls land, so a
worker that dies mid-batch leaks only the *unfinished* units to TTL
expiry — completed members are already recorded and released.

The server is an asyncio event loop speaking HTTP/1.1 with keep-alive
(still stdlib-only).  Workers hold persistent connections, and a
thousand idle sockets cost one loop rather than the thousand OS threads
a thread-per-connection server would pin; the blocking, lock-protected
coordinator operations run on a small thread pool, which is exactly
what piles concurrent transitions into one group commit.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import secrets
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from hashlib import sha1
from pathlib import Path
from typing import Any

from repro.runtime.backends import (
    AckReply,
    BatchAckReply,
    BatchClaimReply,
    BatchClaimRequest,
    BatchLeaseRequest,
    BatchRecordReply,
    BatchRecordRequest,
    ClaimReply,
    ClaimRequest,
    LeaseRequest,
    RecordRequest,
)
from repro.runtime.checkpoint import (
    CheckpointError,
    RunCheckpoint,
    _ends_with_newline,
    iter_jsonl,
    iter_result_records,
    journal_segment_path,
    journal_segments,
    journal_snapshots,
    snapshot_path,
)
from repro.runtime.distributed import (
    DEFAULT_LEASE_TTL,
    STATUS_SCHEMA_VERSION,
    LeaseDir,
    lease_seems_live,
)

__all__ = [
    "ADVISORY_LEASE_UNIT",
    "DEFAULT_SEGMENT_BYTES",
    "JOURNAL_NAME",
    "SNAPSHOT_SCHEMA_VERSION",
    "Coordinator",
    "CoordinatorHTTPServer",
    "UnknownUnitError",
    "serve_coordinator",
    "running_coordinator",
    "standby_coordinator",
]

logger = logging.getLogger(__name__)

#: Journal file name inside the coordinator's run directory (segment 0;
#: rolled segments are ``coordinator.<seq>.jsonl``, see
#: :func:`repro.runtime.checkpoint.journal_segment_path`).
JOURNAL_NAME = "coordinator.jsonl"
#: Roll the journal (and snapshot the state) once the active segment
#: crosses this many bytes.  ~4 MiB keeps restart replay bounded by a
#: few tens of thousands of events regardless of sweep size, while a
#: small sweep never rolls at all (one segment, no snapshot — exactly
#: the pre-segmentation layout).
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
#: Version tag of the ``snapshot.<seq>.json`` format.
SNAPSHOT_SCHEMA_VERSION = 1
#: The advisory lease a serving coordinator holds in its run directory's
#: ``leases/`` dir.  Coordinator workers leave no lease files (their
#: leases live in server memory), so without this marker the lease-aware
#: ``runs gc`` could collect a directory a live coordinator is serving.
#: Renewed like any worker lease; goes stale when the coordinator dies,
#: so a dead coordinator does not protect its directory forever.
ADVISORY_LEASE_UNIT = "__coordinator__"


class UnknownUnitError(ValueError):
    """A request named a unit that is not part of this run — a worker
    draining the wrong coordinator, or a version-skewed plan."""


def _event_units(event: dict) -> list[str] | None:
    """The unit keys a journal event covers: singular ``unit`` (the
    per-unit protocol) or plural ``units`` (batched claims/releases)."""
    unit = event.get("unit")
    if isinstance(unit, str):
        return [unit]
    units = event.get("units")
    if isinstance(units, list) and units and all(isinstance(u, str) for u in units):
        return units
    return None


@dataclass
class _LeaseEntry:
    """One in-flight lease in the coordinator's table."""

    worker: str
    token: str
    ttl: float
    reclaimed: bool
    heartbeat: float  # coordinator-monotonic instant of the last beat
    #: True while this entry exists only because a restart replayed it —
    #: its heartbeat is the restart instant, not proof the worker lives.
    #: Cleared by the first real renewal or holder re-claim.
    restored: bool = False


@dataclass
class _PendingSnapshot:
    """A sealed segment's snapshot, captured under the state lock and
    published (written + old segments reaped) outside it."""

    seq: int  # the segment this snapshot covers through
    ticket: int  # last journal ticket of the sealed segment
    state: dict  # the JSON-serializable snapshot body


class _GroupCommitJournal:
    """Write-ahead JSONL journal with group commit.

    :meth:`enqueue` buffers one event and returns a ticket; it must be
    called under the caller's state lock, which is what fixes journal
    order = state order.  :meth:`wait_durable` (called *outside* that
    lock) blocks until the ticket's bytes are on disk: the first waiter
    to find no commit in progress becomes the leader and drains the
    whole buffer with one ``write`` + ``flush`` + ``os.fsync`` while
    later arrivals wait on the condition.  N concurrent transitions
    therefore cost one fsync, and a request is acknowledged only after
    its record is durable.

    A failed commit poisons exactly the tickets in the failed batch
    (their waiters re-raise the write error); later enqueues proceed —
    the torn-line-tolerant journal reader makes a partially-written
    batch a recoverable event, not corruption.

    **Rolling.**  :meth:`roll` (called under the same state lock as
    :meth:`enqueue`) switches subsequent appends to a new segment file by
    planting a roll marker in the buffer — the commit leader fsyncs and
    closes the sealed segment when it reaches the marker, then opens the
    new one.  Because the marker sits *between* buffered lines, journal
    order across segment boundaries still equals state order, and the
    caller can snapshot the state it captured at roll time once the
    sealed segment's last ticket is durable.
    """

    def __init__(self, path: str | Path, metrics: Any | None = None) -> None:
        self.path = Path(path)  # the active (newest) segment
        # Group-commit observability (``metrics`` is a MetricsRegistry):
        # how many transitions each fsync amortizes, and what the fsync
        # itself costs — the two numbers that explain coordinator write
        # throughput.
        self._m_batch = self._m_fsync = None
        if metrics is not None:
            self._m_batch = metrics.histogram(
                "coordinator_journal_batch_size",
                "Journal events per group commit (transitions amortized per fsync).",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            )
            self._m_fsync = metrics.histogram(
                "coordinator_journal_fsync_seconds",
                "Wall seconds per journal write+flush+fsync.",
            )
        #: Bytes in the active segment, counting buffered-but-unwritten
        #: lines; read by the coordinator (under its state lock, the same
        #: lock serializing enqueue/roll) to decide when to roll.
        try:
            self.segment_bytes = self.path.stat().st_size
        except OSError:
            self.segment_bytes = 0
        self._cond = threading.Condition()
        # Buffer items: ("line", bytes) or ("roll", Path).
        self._pending: list[tuple[str, Any]] = []
        self._enqueued = 0  # line tickets handed out
        self._durable = 0  # tickets whose bytes are fsynced (or poisoned)
        self._writing = False  # a leader is inside write+fsync
        self._failed: tuple[int, Exception] | None = None  # (through_ticket, cause)
        self._fh: Any | None = None
        self._commit_path = self.path  # segment the leader is appending to

    def enqueue(self, event: dict) -> int:
        """Buffer one event; caller must hold the state lock."""
        line = (json.dumps(event) + "\n").encode()
        with self._cond:
            self._pending.append(("line", line))
            self._enqueued += 1
            self.segment_bytes += len(line)
            return self._enqueued

    def last_ticket(self) -> int:
        """The most recently issued ticket (0 if nothing was enqueued)."""
        with self._cond:
            return self._enqueued

    def pending(self) -> int:
        """Events enqueued but not yet durable (the journal's commit lag)."""
        with self._cond:
            return max(self._enqueued - self._durable, 0)

    def roll(self, new_path: str | Path) -> None:
        """Seal the active segment and append to ``new_path`` from now on.

        Caller must hold the state lock (like :meth:`enqueue`), so the
        roll lands at a well-defined point of the event order.
        """
        with self._cond:
            self._pending.append(("roll", Path(new_path)))
            self.path = Path(new_path)
            self.segment_bytes = 0

    def wait_durable(self, ticket: int) -> None:
        """Block until ``ticket``'s event is on disk (leader/follower)."""
        while True:
            with self._cond:
                if self._failed is not None and ticket <= self._failed[0]:
                    raise self._failed[1]
                if self._durable >= ticket:
                    return
                if self._writing or not self._pending:
                    self._cond.wait(timeout=1.0)
                    continue
                batch = self._pending
                self._pending = []
                self._writing = True
                through = self._durable + sum(1 for kind, _ in batch if kind == "line")
            try:
                self._commit(batch)
            except Exception as exc:  # noqa: BLE001 - waiters must see the cause
                with self._cond:
                    self._failed = (through, exc)
                    self._durable = through  # unblock; poisoned tickets raise
                    self._writing = False
                    self._cond.notify_all()
                raise
            with self._cond:
                self._durable = through
                self._writing = False
                self._cond.notify_all()

    def _commit(self, batch: list[tuple[str, Any]]) -> None:
        if self._m_batch is not None:
            lines = sum(1 for kind, _ in batch if kind == "line")
            if lines:
                self._m_batch.observe(lines)
        buffered: list[bytes] = []
        for kind, payload in batch:
            if kind == "line":
                buffered.append(payload)
                continue
            # Roll marker: everything buffered belongs to the sealed
            # segment — write + fsync it there, then switch files.
            self._write_fsync(b"".join(buffered))
            buffered = []
            self._close_fh()
            self._commit_path = payload
        self._write_fsync(b"".join(buffered))

    def _write_fsync(self, data: bytes) -> None:
        if not data:
            return
        t0 = time.perf_counter() if self._m_fsync is not None else 0.0
        if self._fh is None:
            fh = self._commit_path.open("ab")
            # Repair a killed predecessor's torn tail before appending,
            # exactly as append_jsonl would.
            if fh.tell() > 0 and not _ends_with_newline(self._commit_path):
                fh.write(b"\n")
            self._fh = fh
        self._fh.write(data)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        if self._m_fsync is not None:
            self._m_fsync.observe(time.perf_counter() - t0)

    def _close_fh(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            with contextlib.suppress(OSError):
                fh.close()

    def close(self) -> None:
        with self._cond:
            self._close_fh()


class Coordinator:
    """Lock-protected lease table + result store over one run directory.

    All methods are thread-safe (the HTTP server calls them from a
    bounded thread pool).  State-changing methods enqueue their journal
    event under the state lock — fixing journal order = state order —
    then wait for the group commit *outside* the lock before returning,
    so every acknowledged transition is durable and concurrent
    transitions share one fsync.
    """

    def __init__(
        self,
        run_dir: str | Path,
        *,
        ttl: float = DEFAULT_LEASE_TTL,
        unit_keys: list[str] | None = None,
        segment_bytes: int | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.run_dir = Path(run_dir)
        self.ttl = float(ttl)
        self.segment_bytes = (
            DEFAULT_SEGMENT_BYTES if segment_bytes is None else int(segment_bytes)
        )
        if self.segment_bytes <= 0:
            raise ValueError(f"segment_bytes must be positive, got {segment_bytes}")
        self.checkpoint = RunCheckpoint(self.run_dir)  # raw results; codecs stay client-side
        manifest = self.checkpoint.manifest()
        if manifest is None:
            raise CheckpointError(
                f"{self.run_dir} has no {RunCheckpoint.MANIFEST_NAME}; initialize it "
                "with `repro sweep serve --spec spec.json` (or run/work it once)"
            )
        if not isinstance(manifest, dict):
            raise CheckpointError(f"{self.run_dir} manifest is not an object")
        self.manifest = manifest
        self.unit_keys = None if unit_keys is None else set(unit_keys)
        total = manifest.get("units")
        self.total_units: int | None = total if isinstance(total, int) else None
        self._lock = threading.Lock()
        #: Authoritative completion set.  Result *values* live in
        #: ``_results`` — populated eagerly on a full replay (shard scan),
        #: lazily on a snapshot restart (that laziness is what makes
        #: restart O(live state); ``GET /results`` hydrates on demand).
        self._completed: set[str] = set()
        self._results: dict[str, Any] = {}
        self._results_hydrated = False
        self._shard_counts: dict[str, int] = {}
        self._duplicates = 0
        self._leases: dict[str, _LeaseEntry] = {}
        self._segment_seq = 0
        # Per-instance metrics registry: a restarted coordinator (or a
        # promoting standby) builds a fresh one and seeds it from the
        # recovered state below, so `GET /metrics` is always consistent
        # with the server's actual authority — never a stale carry-over.
        from repro.observability.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        self._started_at = time.monotonic()
        self._m_claims = self.metrics.counter(
            "coordinator_claims_granted_total", "Lease claims granted (incl. batch members)."
        )
        self._m_reclaims = self.metrics.counter(
            "coordinator_claims_reclaimed_total",
            "Granted claims that reclaimed an expired peer lease.",
        )
        self._m_expired = self.metrics.counter(
            "coordinator_leases_expired_total", "Stale leases expired and re-granted."
        )
        self._m_records = self.metrics.counter(
            "coordinator_records_total",
            "Units durably recorded (seeded with recovered completions on restart).",
        )
        self._m_duplicates = self.metrics.counter(
            "coordinator_duplicate_records_total",
            "Duplicate records dropped (first writer wins).",
        )
        self._m_releases = self.metrics.counter(
            "coordinator_releases_total", "Leases released (incl. batch members)."
        )
        # Per-worker attribution is live-traffic only (recovery cannot map
        # mangled shard names back to worker ids); `sweep top` uses the
        # frame-to-frame delta, so a restart just restarts the window.
        self._m_worker_records = self.metrics.counter(
            "coordinator_worker_records_total",
            "Results recorded since this coordinator started, by worker.",
            labelnames=("worker",),
        )
        self._m_recoveries = self.metrics.counter(
            "coordinator_recoveries_total",
            "Restarts that rebuilt state from snapshot/journal/shards.",
        )
        self._m_roll_s = self.metrics.histogram(
            "coordinator_rollover_seconds", "Wall seconds sealing a journal segment."
        )
        self._m_snapshot_s = self.metrics.histogram(
            "coordinator_snapshot_write_seconds",
            "Wall seconds writing+fsyncing one state snapshot.",
        )
        self._m_snapshots = self.metrics.counter(
            "coordinator_snapshots_total", "State snapshots published."
        )
        self._recover()
        # Seed the cumulative series from recovered state: after a restart
        # or standby takeover, records_total keeps matching the completion
        # set the merged report will show.
        if self._completed:
            self._m_records.inc(len(self._completed))
        if self._duplicates:
            self._m_duplicates.inc(self._duplicates)
        if self._completed or self._leases:
            self._m_recoveries.inc()
        self._journal = _GroupCommitJournal(
            journal_segment_path(self.run_dir, self._segment_seq), metrics=self.metrics
        )

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def _manifest_hash(self) -> str:
        """A digest binding snapshots to this run's identity: a snapshot
        of a *different* experiment (a reused directory) must never seed
        this coordinator's state."""
        return sha1(json.dumps(self.manifest, sort_keys=True).encode()).hexdigest()

    def _recover(self) -> None:
        """Rebuild in-memory state after a (possibly SIGKILLed) restart.

        Snapshot-first: the newest valid ``snapshot.<seq>.json`` seeds
        the completion set, shard counts, and lease table, then only the
        journal segments *after* it replay — O(live state), not
        O(history).  A torn or mismatched snapshot falls back to the
        previous one; with no usable snapshot at all (including every
        pre-segmentation run directory), results are rebuilt by scanning
        the shard files and the lease table replays from every surviving
        segment — the original full-replay path.

        Every acknowledged transition is fsynced in some segment covered
        by this chain, so acked state always survives; a journal line
        torn by the kill was never acked, and its worker's retry is
        idempotent.  Heartbeats reset to *now* and restored leases are
        flagged (``restored=True``) until their first real renewal:
        in-flight holders get one fresh TTL to prove they are alive
        before their units are re-granted, but status consumers can see
        that a fresh-looking heartbeat is only the restart instant.
        """
        now = time.monotonic()
        snap_seq = -1
        for seq, path in reversed(journal_snapshots(self.run_dir)):
            state = self._load_snapshot(path)
            if state is None:
                logger.warning(
                    "%s: torn or mismatched snapshot; falling back to the previous one",
                    path,
                )
                continue
            snap_seq = seq
            self._completed = set(state["completed"])
            self._shard_counts = dict(state["shard_counts"])
            self._duplicates = int(state["duplicates"])
            for item in state["leases"]:
                self._leases[item["unit"]] = _LeaseEntry(
                    worker=item["worker"],
                    token=item["token"],
                    ttl=item["ttl"],
                    reclaimed=item["reclaimed"],
                    heartbeat=now,
                    restored=True,
                )
            break
        if snap_seq < 0:
            # Full replay: the shard files are the durable record store.
            for path in self.checkpoint.result_paths():
                for record in iter_result_records(path):
                    key = record["key"]
                    if key in self._completed:
                        self._duplicates += 1
                        continue
                    self._completed.add(key)
                    self._results[key] = record["result"]
                    self._shard_counts[path.name] = (
                        self._shard_counts.get(path.name, 0) + 1
                    )
            self._results_hydrated = True
        segments = journal_segments(self.run_dir)
        replayed = 0
        for seq, path in segments:
            if seq <= snap_seq:
                continue  # fully covered by the snapshot
            replayed += self._replay_segment(path, now)
        # A record whose journal line was torn still completed durably
        # (the shard append precedes the journal append's acknowledgement
        # path only in memory; both precede the reply) — drop any lease
        # the replay left on a completed unit.
        for unit in [u for u in self._leases if u in self._completed]:
            del self._leases[unit]
        # Appends go to a segment no snapshot claims to fully cover:
        # past the newest existing segment *and* past the newest snapshot
        # (writing into a snapshot-covered segment would hide events from
        # the next restart).
        max_segment = segments[-1][0] if segments else 0
        self._segment_seq = max(max_segment, snap_seq + 1, 0)
        if replayed or self._completed:
            logger.info(
                "coordinator recovered %d completed unit(s) and %d in-flight "
                "lease(s) from %s (%s + %d replayed event(s))",
                len(self._completed),
                len(self._leases),
                self.run_dir,
                f"snapshot {snap_seq}" if snap_seq >= 0 else "shard scan",
                replayed,
            )

    def _replay_segment(self, path: Path, now: float) -> int:
        """Replay one journal segment into the state; returns event count.

        Replay is *prefix-idempotent*: claims overwrite the lease row,
        releases/expiries pop it, records are guarded by the completion
        set — so replaying events a snapshot already includes converges
        to the same state, which is what makes the snapshot/segment
        boundary safe against every kill point.
        """
        replayed = 0
        for event in iter_jsonl(path, what="coordinator journal"):
            if not isinstance(event, dict):
                continue
            kind = event.get("event")
            units = _event_units(event)
            if units is None:
                continue
            replayed += 1
            if kind == "claim":
                try:
                    worker = str(event["worker"])
                    token = str(event["token"])
                    ttl = float(event["ttl"])
                except (KeyError, TypeError, ValueError):
                    continue  # torn mid-object; the lease is simply forgotten
                reclaimed = event.get("reclaimed", False)
                if isinstance(reclaimed, list):
                    reclaimed_units = {u for u in reclaimed if isinstance(u, str)}
                else:
                    reclaimed_units = set(units) if reclaimed is True else set()
                for unit in units:
                    self._leases[unit] = _LeaseEntry(
                        worker=worker,
                        token=token,
                        ttl=ttl,
                        reclaimed=unit in reclaimed_units,
                        heartbeat=now,
                        restored=True,
                    )
            elif kind == "record":
                worker = event.get("worker")
                shard = (
                    self.checkpoint.shard_path(worker).name
                    if isinstance(worker, str)
                    else None
                )
                for unit in units:
                    self._leases.pop(unit, None)
                    if unit not in self._completed:
                        self._completed.add(unit)
                        if shard is not None:
                            self._shard_counts[shard] = (
                                self._shard_counts.get(shard, 0) + 1
                            )
            elif kind in ("release", "expire"):
                for unit in units:
                    self._leases.pop(unit, None)
        return replayed

    def _load_snapshot(self, path: Path) -> dict | None:
        """Parse + validate one snapshot file; None means fall back."""
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("schema") != SNAPSHOT_SCHEMA_VERSION:
            return None
        if data.get("manifest_sha1") != self._manifest_hash():
            return None  # another experiment's snapshot in a reused directory
        completed = data.get("completed")
        shard_counts = data.get("shard_counts")
        duplicates = data.get("duplicates")
        leases = data.get("leases")
        if not (
            isinstance(completed, list)
            and all(isinstance(k, str) for k in completed)
            and isinstance(shard_counts, dict)
            and all(
                isinstance(k, str) and isinstance(v, int)
                for k, v in shard_counts.items()
            )
            and isinstance(duplicates, int)
            and isinstance(leases, list)
        ):
            return None
        entries = []
        for item in leases:
            if not isinstance(item, dict):
                return None
            try:
                entries.append(
                    {
                        "unit": str(item["unit"]),
                        "worker": str(item["worker"]),
                        "token": str(item["token"]),
                        "ttl": float(item["ttl"]),
                        "reclaimed": bool(item.get("reclaimed", False)),
                    }
                )
            except (KeyError, TypeError, ValueError):
                return None
        return {
            "completed": completed,
            "shard_counts": shard_counts,
            "duplicates": duplicates,
            "leases": entries,
        }

    # ------------------------------------------------------------------ #
    # Rollover + snapshots
    # ------------------------------------------------------------------ #
    def _maybe_roll_locked(self) -> _PendingSnapshot | None:
        """Roll the journal if the active segment crossed the threshold.

        Caller holds the state lock.  Returns the pending snapshot to
        publish via :meth:`_finish` (outside the lock), or None.
        """
        if self._journal.segment_bytes < self.segment_bytes:
            return None
        return self._roll_locked()

    def _roll_locked(self) -> _PendingSnapshot:
        """Seal the active segment and capture a state snapshot.

        The captured state may include effects of events not yet durable
        (still queued for the group commit) — that is safe because
        :meth:`_finish` publishes the snapshot only after the sealed
        segment's last ticket commits, and replay on top of a snapshot is
        prefix-idempotent anyway.
        """
        roll_t0 = time.perf_counter()
        sealed = self._segment_seq
        ticket = self._journal.last_ticket()
        state = {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "seq": sealed,
            "manifest_sha1": self._manifest_hash(),
            "completed": sorted(self._completed),
            "shard_counts": dict(self._shard_counts),
            "duplicates": self._duplicates,
            "leases": [
                {
                    "unit": unit,
                    "worker": entry.worker,
                    "token": entry.token,
                    "ttl": entry.ttl,
                    "reclaimed": entry.reclaimed,
                }
                for unit, entry in sorted(self._leases.items())
            ],
        }
        self._segment_seq = sealed + 1
        self._journal.roll(journal_segment_path(self.run_dir, self._segment_seq))
        self._m_roll_s.observe(time.perf_counter() - roll_t0)
        return _PendingSnapshot(seq=sealed, ticket=ticket, state=state)

    def _finish(self, ticket: int | None, pending: _PendingSnapshot | None = None) -> None:
        """Outside the state lock: wait for this operation's journal
        event to be durable (group commit), and publish a pending
        snapshot once everything it covers is durable too.

        The snapshot wait costs no extra fsync: the roll-triggering
        operation's own event is the last line of the sealed segment, so
        waiting on the sealed ticket *is* waiting on this operation.
        """
        if pending is not None:
            self._journal.wait_durable(max(ticket or 0, pending.ticket))
            self._publish_snapshot(pending)
        elif ticket is not None:
            self._journal.wait_durable(ticket)

    def _publish_snapshot(self, pending: _PendingSnapshot) -> None:
        """Atomically write ``snapshot.<seq>.json``, then reap history.

        tmp + fsync + ``os.replace``: a kill leaves either the previous
        snapshot set or the complete new file, never a torn one.  A write
        failure is logged and swallowed — the snapshot is an optimization;
        the journal chain it summarizes remains authoritative.
        """
        path = snapshot_path(self.run_dir, pending.seq)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        snap_t0 = time.perf_counter()
        try:
            with tmp.open("w") as fh:
                json.dump(pending.state, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            logger.exception("could not publish coordinator snapshot %s", path)
            with contextlib.suppress(OSError):
                tmp.unlink()
            return
        self._m_snapshot_s.observe(time.perf_counter() - snap_t0)
        self._m_snapshots.inc()
        logger.info(
            "coordinator snapshot %s covers journal segments <= %d "
            "(%d completed, %d leases)",
            path.name,
            pending.seq,
            len(pending.state["completed"]),
            len(pending.state["leases"]),
        )
        self._reap_covered()

    def _reap_covered(self) -> None:
        """Delete journal history the two newest snapshots make redundant.

        Keeping two snapshots preserves the torn-snapshot fallback: the
        newest may be refused at restart (corruption, by validation), and
        the previous one still covers every surviving segment.  Segments
        newer than the *previous* snapshot are always kept — they are the
        replay tail of both snapshots.  With fewer than two snapshots
        nothing is reaped, so the newest snapshot and uncovered segments
        can never vanish.
        """
        snapshots = journal_snapshots(self.run_dir)
        if len(snapshots) < 2:
            return
        keep = {seq for seq, _ in snapshots[-2:]}
        previous = snapshots[-2][0]
        for seq, path in snapshots:
            if seq not in keep:
                with contextlib.suppress(OSError):
                    path.unlink()
        for seq, path in journal_segments(self.run_dir):
            if seq <= previous:
                with contextlib.suppress(OSError):
                    path.unlink()

    def roll_journal(self) -> Path:
        """Seal the active segment and publish a snapshot *now*.

        Operational lever (and the restart benchmark's setup): after this
        returns, a restart loads the snapshot and replays only events
        that arrive later.  Returns the published snapshot's path.
        """
        with self._lock:
            pending = self._roll_locked()
        self._finish(None, pending)
        return snapshot_path(self.run_dir, pending.seq)

    def close(self) -> None:
        """Release the journal file handle (clean shutdown only)."""
        self._journal.close()

    def _validate_unit(self, unit: str) -> None:
        if self.unit_keys is not None and unit not in self.unit_keys:
            raise UnknownUnitError(f"unit {unit!r} is not part of this run")

    def _expire_locked(self, unit: str, entry: _LeaseEntry, claimant: str) -> int:
        """Journal + drop one stale lease; returns its commit ticket."""
        ticket = self._journal.enqueue(
            {"event": "expire", "unit": unit, "worker": entry.worker, "token": entry.token}
        )
        del self._leases[unit]
        self._m_expired.inc()
        logger.warning(
            "expired stale lease on unit %r (worker %s silent past its "
            "%.0fs ttl); re-granting to %s",
            unit,
            entry.worker,
            entry.ttl,
            claimant,
        )
        return ticket

    # ------------------------------------------------------------------ #
    # The protocol operations
    # ------------------------------------------------------------------ #
    def claim(self, request: ClaimRequest) -> ClaimReply:
        """Grant ``request.unit`` to ``request.worker`` if it is free.

        Exactly one winner per unit: the table mutation happens under the
        lock, so concurrent claims of one unit serialize and the losers
        see the winner's live lease.  An expired lease is journaled as an
        ``expire`` and re-granted with ``reclaimed=True``; a re-claim by
        the *current holder* (a retry after a lost reply) idempotently
        re-grants the same token.
        """
        with self._lock:
            reply, ticket = self._claim_locked(request)
            pending = self._maybe_roll_locked() if ticket is not None else None
        self._finish(ticket, pending)
        return reply

    def _claim_locked(self, request: ClaimRequest) -> tuple[ClaimReply, int | None]:
        self._validate_unit(request.unit)
        if request.unit in self._completed:
            return ClaimReply(granted=False, completed=True), None
        now = time.monotonic()
        entry = self._leases.get(request.unit)
        reclaimed = False
        if entry is not None:
            if entry.worker == request.worker:
                entry.heartbeat = now
                entry.restored = False  # a live re-claim is proof of life
                self._m_claims.inc()
                return (
                    ClaimReply(
                        granted=True,
                        token=entry.token,
                        ttl=entry.ttl,
                        reclaimed=entry.reclaimed,
                    ),
                    None,
                )
            if now - entry.heartbeat <= entry.ttl:
                return ClaimReply(granted=False), None
            self._expire_locked(request.unit, entry, request.worker)
            reclaimed = True
        token = secrets.token_hex(8)
        ticket = self._journal.enqueue(
            {
                "event": "claim",
                "unit": request.unit,
                "worker": request.worker,
                "token": token,
                "ttl": self.ttl,
                "reclaimed": reclaimed,
            }
        )
        self._leases[request.unit] = _LeaseEntry(
            worker=request.worker,
            token=token,
            ttl=self.ttl,
            reclaimed=reclaimed,
            heartbeat=now,
        )
        self._m_claims.inc()
        if reclaimed:
            self._m_reclaims.inc()
        return ClaimReply(granted=True, token=token, ttl=self.ttl, reclaimed=reclaimed), ticket

    def claim_batch(self, request: BatchClaimRequest) -> BatchClaimReply:
        """Grant as many of ``request.units`` as possible to one worker
        under **one token and one journal record**.

        Units already recorded come back in ``completed``; units held by
        a live peer are silently omitted; expired leases are journaled
        as ``expire`` events and re-granted (listed in ``reclaimed``).
        Units the *requesting worker* already holds — a retry after a
        lost reply, since its old token is now unreachable — are folded
        into the fresh batch token.  Each granted member keeps its own
        row in the lease table, so records drop members one at a time
        and a mid-batch death leaks only the unfinished remainder.
        """
        with self._lock:
            for unit in request.units:
                self._validate_unit(unit)
            now = time.monotonic()
            granted: list[str] = []
            reclaimed: list[str] = []
            completed: list[str] = []
            for unit in request.units:
                if unit in self._completed:
                    completed.append(unit)
                    continue
                entry = self._leases.get(unit)
                if entry is not None:
                    if entry.worker != request.worker:
                        if now - entry.heartbeat <= entry.ttl:
                            continue  # a live peer holds it
                        self._expire_locked(unit, entry, request.worker)
                        reclaimed.append(unit)
                    else:
                        # The holder retrying a lost reply: fold its units
                        # into this batch under the fresh token.
                        if entry.reclaimed:
                            reclaimed.append(unit)
                        del self._leases[unit]
                granted.append(unit)
            if not granted:
                return BatchClaimReply(granted=(), completed=tuple(completed))
            token = secrets.token_hex(8)
            ticket = self._journal.enqueue(
                {
                    "event": "claim",
                    "units": granted,
                    "worker": request.worker,
                    "token": token,
                    "ttl": self.ttl,
                    "reclaimed": reclaimed,
                }
            )
            reclaimed_set = set(reclaimed)
            for unit in granted:
                self._leases[unit] = _LeaseEntry(
                    worker=request.worker,
                    token=token,
                    ttl=self.ttl,
                    reclaimed=unit in reclaimed_set,
                    heartbeat=now,
                )
            self._m_claims.inc(len(granted))
            if reclaimed:
                self._m_reclaims.inc(len(reclaimed))
            reply = BatchClaimReply(
                granted=tuple(granted),
                token=token,
                ttl=self.ttl,
                reclaimed=tuple(reclaimed),
                completed=tuple(completed),
            )
            pending = self._maybe_roll_locked()
        self._finish(ticket, pending)
        return reply

    def renew(self, request: LeaseRequest) -> AckReply:
        """Refresh a lease's heartbeat; stale tokens are rejected.

        Renewals are *not* journaled — after a restart every surviving
        lease's heartbeat resets to the restart instant anyway, so the
        per-beat write would buy nothing.
        """
        with self._lock:
            entry = self._leases.get(request.unit)
            if entry is None or entry.token != request.token:
                return AckReply(ok=False, stale=True)
            entry.heartbeat = time.monotonic()
            entry.restored = False  # first real beat after a restart
            return AckReply(ok=True)

    def renew_batch(self, request: BatchLeaseRequest) -> BatchAckReply:
        """Refresh the heartbeat of every listed unit still owned by the
        presented token; ``stale`` reports the rest (recorded, expired,
        or re-granted members).  Not journaled, like single renew."""
        with self._lock:
            now = time.monotonic()
            stale: list[str] = []
            owned = 0
            for unit in request.units:
                entry = self._leases.get(unit)
                if entry is None or entry.token != request.token:
                    stale.append(unit)
                else:
                    entry.heartbeat = now
                    entry.restored = False  # first real beat after a restart
                    owned += 1
        return BatchAckReply(ok=owned > 0, stale=tuple(stale))

    def release(self, request: LeaseRequest) -> AckReply:
        """Drop a lease — only for its current token.

        Releasing an already-gone lease acknowledges idempotently (the
        retry-after-lost-reply case); releasing with a superseded token
        is rejected so a stalled worker cannot unlink the new holder's
        claim.
        """
        with self._lock:
            entry = self._leases.get(request.unit)
            if entry is None:
                return AckReply(ok=True)
            if entry.token != request.token:
                return AckReply(ok=False, stale=True)
            ticket = self._journal.enqueue(
                {
                    "event": "release",
                    "unit": request.unit,
                    "worker": request.worker,
                    "token": request.token,
                }
            )
            del self._leases[request.unit]
            self._m_releases.inc()
            pending = self._maybe_roll_locked()
        self._finish(ticket, pending)
        return AckReply(ok=True)

    def release_batch(self, request: BatchLeaseRequest) -> BatchAckReply:
        """Drop every listed unit still owned by the presented token,
        under one journal record.  Vanished members acknowledge
        idempotently; superseded tokens are reported in ``stale`` and
        left alone (a stalled worker cannot unlink the new holder)."""
        with self._lock:
            released: list[str] = []
            stale: list[str] = []
            for unit in request.units:
                entry = self._leases.get(unit)
                if entry is None:
                    continue  # already gone: idempotent
                if entry.token != request.token:
                    stale.append(unit)
                    continue
                released.append(unit)
            ticket = None
            if released:
                ticket = self._journal.enqueue(
                    {
                        "event": "release",
                        "units": released,
                        "worker": request.worker,
                        "token": request.token,
                    }
                )
                for unit in released:
                    del self._leases[unit]
                self._m_releases.inc(len(released))
            pending = self._maybe_roll_locked() if ticket is not None else None
        self._finish(ticket, pending)
        return BatchAckReply(ok=True, stale=tuple(stale))

    def record(self, request: RecordRequest) -> AckReply:
        """Durably record one unit's result, exactly once.

        The shard append (and journal line) happen before the
        acknowledgement, and the worker releases only after being
        acknowledged — record-before-release end to end.  A unit already
        recorded acknowledges as a duplicate without writing (first
        writer wins).  A *stale* token does not block recording as long
        as the unit is unrecorded: like the filesystem protocol, a robbed
        worker that finishes first contributes its (bit-identical) result
        rather than wasting it — and the superseded holder's lease is
        dropped so the unit cannot be claimed again.
        """
        with self._lock:
            self._validate_unit(request.unit)
            if request.unit in self._completed:
                self._duplicates += 1
                self._m_duplicates.inc()
                logger.warning(
                    "duplicate record for unit %r from worker %s dropped "
                    "(first writer wins)",
                    request.unit,
                    request.worker,
                )
                return AckReply(ok=True, duplicate=True)
            entry = self._leases.get(request.unit)
            stale = entry is None or entry.token != request.token
            if stale:
                logger.warning(
                    "recording unit %r from worker %s despite a stale lease "
                    "token (its lease was reclaimed while it ran)",
                    request.unit,
                    request.worker,
                )
            shard_name = self.checkpoint.shard_path(request.worker).name
            self.checkpoint.record(request.unit, request.result, shard=request.worker)
            ticket = self._journal.enqueue(
                {"event": "record", "unit": request.unit, "worker": request.worker}
            )
            self._completed.add(request.unit)
            self._results[request.unit] = request.result
            self._shard_counts[shard_name] = self._shard_counts.get(shard_name, 0) + 1
            self._leases.pop(request.unit, None)
            self._m_records.inc()
            self._m_worker_records.labels(request.worker).inc()
            pending = self._maybe_roll_locked()
        self._finish(ticket, pending)
        return AckReply(ok=True)

    def record_batch(self, request: BatchRecordRequest) -> BatchRecordReply:
        """Durably record several units' results in one flush.

        Per-unit semantics match :meth:`record` — a unit already recorded
        is dropped as a duplicate (first writer wins), a stale token does
        not block recording, and every listed unit's lease is dropped.
        The writes are batch-grained: one shard append (one open+flush
        covering every line), one journal event, one group commit for
        the whole flush — the amortization that lets sub-second units
        keep the coordinator out of the critical path.
        """
        with self._lock:
            for unit in request.units:
                self._validate_unit(unit)
            duplicates: list[str] = []
            fresh: list[tuple[str, Any]] = []
            for unit, result in zip(request.units, request.results):
                if unit in self._completed:
                    duplicates.append(unit)
                    continue
                entry = self._leases.get(unit)
                if entry is None or entry.token != request.token:
                    logger.warning(
                        "recording unit %r from worker %s despite a stale lease "
                        "token (its lease was reclaimed while it ran)",
                        unit,
                        request.worker,
                    )
                fresh.append((unit, result))
            ticket = None
            if fresh:
                shard_name = self.checkpoint.shard_path(request.worker).name
                self.checkpoint.record_many(fresh, shard=request.worker)
                ticket = self._journal.enqueue(
                    {
                        "event": "record",
                        "units": [unit for unit, _ in fresh],
                        "worker": request.worker,
                    }
                )
                for unit, result in fresh:
                    self._completed.add(unit)
                    self._results[unit] = result
                self._shard_counts[shard_name] = (
                    self._shard_counts.get(shard_name, 0) + len(fresh)
                )
                self._m_records.inc(len(fresh))
                self._m_worker_records.labels(request.worker).inc(len(fresh))
            if duplicates:
                self._duplicates += len(duplicates)
                self._m_duplicates.inc(len(duplicates))
                logger.warning(
                    "duplicate record(s) for %d unit(s) from worker %s dropped "
                    "(first writer wins)",
                    len(duplicates),
                    request.worker,
                )
            for unit in request.units:
                self._leases.pop(unit, None)
            pending = self._maybe_roll_locked() if ticket is not None else None
        self._finish(ticket, pending)
        return BatchRecordReply(ok=True, duplicates=tuple(duplicates))

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def completed_keys(self) -> list[str]:
        with self._lock:
            return sorted(self._completed)

    def results(self) -> dict[str, Any]:
        """Every completed unit's result value, keyed by unit.

        After a snapshot restart the values are *hydrated* lazily from
        the shard files on the first call (first writer wins, matching
        the merge everywhere else) — the restart itself stays O(live
        state), and the common server lifecycle (claims, records,
        status) never pays the scan at all.
        """
        with self._lock:
            if not self._results_hydrated:
                for path in self.checkpoint.result_paths():
                    for record in iter_result_records(path):
                        self._results.setdefault(record["key"], record["result"])
                self._results_hydrated = True
            return {key: self._results[key] for key in self._completed if key in self._results}

    @property
    def complete(self) -> bool:
        with self._lock:
            return self.total_units is not None and len(self._completed) >= self.total_units

    def status_payload(self) -> dict:
        """A point-in-time snapshot in the shared status schema — the
        same shape :meth:`repro.runtime.distributed.RunDirStatus.
        to_payload` produces for filesystem run directories."""
        with self._lock:
            now = time.monotonic()
            active: list[dict] = []
            stale: list[dict] = []
            for unit in sorted(self._leases):
                entry = self._leases[unit]
                item = {
                    "unit": unit,
                    "worker": entry.worker,
                    "heartbeat_age": max(round(now - entry.heartbeat, 3), 0.0),
                    "ttl": entry.ttl,
                    # Restored leases' heartbeat is the restart instant, not
                    # proof of life — a dashboard must not read a worker
                    # that died during the outage as fresh.
                    "restored": entry.restored,
                }
                (active if now - entry.heartbeat <= entry.ttl else stale).append(item)
            kind = self.manifest.get("kind")
            spec = self.manifest.get("spec")
            name = spec.get("name") if isinstance(spec, dict) else None
            completed = len(self._completed)
            return {
                # "schema" is the legacy alias; dashboard consumers should
                # key off "schema_version" to detect payload drift.
                "schema": STATUS_SCHEMA_VERSION,
                "schema_version": STATUS_SCHEMA_VERSION,
                "backend": "coordinator",
                "source": str(self.run_dir),
                "kind": kind if isinstance(kind, str) else None,
                "name": name if isinstance(name, str) else None,
                "complete": self.total_units is not None and completed >= self.total_units,
                "total_units": self.total_units,
                "completed_units": completed,
                "shard_counts": dict(sorted(self._shard_counts.items())),
                "duplicate_records": self._duplicates,
                "active_leases": active,
                "stale_leases": stale,
                "torn_leases": 0,
                "torn_live": 0,
            }

    def metrics_text(self) -> str:
        """The registry in Prometheus text format, point-in-time gauges
        refreshed first (lease-table size, completion, journal position).

        This is what ``GET /metrics`` serves.  Cumulative series survive
        restart/takeover via the seeding in ``__init__``; the gauges here
        are derived from live state on every scrape, so they are correct
        by construction on any coordinator generation.
        """
        with self._lock:
            leases = len(self._leases)
            completed = len(self._completed)
            segment_seq = self._segment_seq
            segment_bytes = self._journal.segment_bytes
        gauges = {
            "coordinator_lease_table_size": (
                leases, "In-flight leases (batch members count individually)."
            ),
            "coordinator_completed_units": (completed, "Units durably completed."),
            "coordinator_total_units": (
                self.total_units if self.total_units is not None else 0,
                "Units in this run's manifest (0 if unknown).",
            ),
            "coordinator_journal_segment_seq": (
                segment_seq, "Active journal segment sequence number."
            ),
            "coordinator_journal_segment_bytes": (
                segment_bytes, "Bytes in the active journal segment."
            ),
            "coordinator_journal_pending_events": (
                self._journal.pending(),
                "Journal events enqueued but not yet fsynced (commit lag).",
            ),
            "coordinator_uptime_seconds": (
                time.monotonic() - self._started_at,
                "Seconds since this coordinator process recovered.",
            ),
        }
        for name, (value, help_text) in gauges.items():
            self.metrics.gauge(name, help_text).set(value)
        return self.metrics.render_prometheus()


# ---------------------------------------------------------------------- #
# The HTTP face
# ---------------------------------------------------------------------- #
#: Worker threads for blocking coordinator operations.  Small on
#: purpose: the ops are short critical sections plus a group-commit
#: wait, so a handful of threads saturate the lock while any number of
#: idle keep-alive connections cost the event loop nothing.
_OPERATION_THREADS = 32

#: Content type of the Prometheus text exposition format.
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Endpoints that get their own ``coordinator_request_seconds{op=...}``
#: series; anything else is folded into ``op="other"``.
_KNOWN_ENDPOINTS = frozenset(
    {
        "/status",
        "/completed",
        "/results",
        "/manifest",
        "/healthz",
        "/metrics",
        "/claim",
        "/claim-batch",
        "/renew",
        "/renew-batch",
        "/release",
        "/release-batch",
        "/record",
        "/record-batch",
    }
)


@dataclass(frozen=True)
class _RawBody:
    """A dispatch result that is already encoded — bypasses the default
    JSON response path (``GET /metrics`` serves Prometheus text)."""

    data: bytes
    content_type: str


class CoordinatorHTTPServer:
    """Asyncio HTTP/1.1 keep-alive server bound to one :class:`Coordinator`.

    Replaces the earlier thread-per-request ``ThreadingHTTPServer``: a
    large fleet holding persistent connections would pin one OS thread
    each there, while one event loop holds a thousand idle sockets for
    free.  The blocking, lock-protected coordinator operations run on a
    bounded thread pool — which is also what piles concurrent journal
    transitions into a single group commit.

    The listening socket is bound (and ``server_address`` fixed)
    synchronously in the constructor, so ``url`` is valid before
    ``serve_forever()`` starts the loop on whatever thread calls it.
    The public surface matches the old server: ``url``,
    ``serve_forever()`` (blocking), ``shutdown()`` (thread-safe),
    ``server_close()``, ``.coordinator``.

    While alive, the server maintains an advisory lease file
    (:data:`ADVISORY_LEASE_UNIT`) in the run directory so everything
    that respects filesystem leases — ``runs gc``, ``sweep status``,
    fresh-initialization refusal — sees the directory as actively
    worked, even though coordinator workers themselves never touch it.
    """

    def __init__(self, address: tuple[str, int], coordinator: Coordinator) -> None:
        self.coordinator = coordinator
        self._sock = socket.create_server(address, backlog=512)
        self._sock.setblocking(False)
        self.server_address = self._sock.getsockname()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._shutdown_flag = threading.Event()
        self._serving = False
        self._stopped = threading.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=_OPERATION_THREADS, thread_name_prefix="coordinator-op"
        )
        self._advisory_leases = LeaseDir(coordinator.run_dir, ttl=coordinator.ttl)
        self._advisory_stop = threading.Event()
        self._advisory_thread: threading.Thread | None = None
        self._advisory_lease = None
        self._hold_advisory_lease()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        self._serving = True
        try:
            asyncio.run(self._serve())
        finally:
            self._stopped.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._handle_client, sock=self._sock)
        if self._shutdown_flag.is_set():  # shutdown() raced serve_forever()
            self._stop_event.set()
        async with server:
            await self._stop_event.wait()

    def shutdown(self) -> None:
        """Stop ``serve_forever`` from any thread."""
        self._shutdown_flag.set()
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None and loop.is_running():
            with contextlib.suppress(RuntimeError):  # loop closed meanwhile
                loop.call_soon_threadsafe(stop.set)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    return  # client closed between requests
                except asyncio.LimitOverrunError:
                    return  # absurd header block; drop the connection
                request_line, _, header_blob = head.partition(b"\r\n")
                parts = request_line.decode("latin-1").split()
                if len(parts) < 2:
                    return
                method, target = parts[0], parts[1]
                headers: dict[str, str] = {}
                for raw in header_blob.decode("latin-1").split("\r\n"):
                    name, sep, value = raw.partition(":")
                    if sep:
                        headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    return
                body = await reader.readexactly(length) if length > 0 else b""
                close_after = headers.get("connection", "").lower() == "close"
                status, reason, payload = await self._dispatch(method, target, body)
                if isinstance(payload, _RawBody):
                    data, content_type = payload.data, payload.content_type
                else:
                    data, content_type = json.dumps(payload).encode(), "application/json"
                head_out = (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"{'Connection: close' + chr(13) + chr(10) if close_after else ''}"
                    "\r\n"
                )
                writer.write(head_out.encode("latin-1") + data)
                await writer.drain()
                if close_after:
                    return
        except asyncio.CancelledError:
            pass  # loop shutting down mid-request; client retries are idempotent
        except (ConnectionError, TimeoutError, OSError):
            pass  # client vanished mid-request; its retry is idempotent
        finally:
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _run(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, lambda: fn(*args))

    async def _dispatch(self, method: str, target: str, body: bytes) -> tuple[int, str, Any]:
        # Per-op request latency: one histogram series per known endpoint
        # (unknown targets share "other" so a port scan cannot explode the
        # label space).  The observation covers parse + queue + operation.
        metrics = self.coordinator.metrics
        op = target if target in _KNOWN_ENDPOINTS else "other"
        t0 = time.perf_counter()
        try:
            return await self._dispatch_inner(method, target, body)
        finally:
            metrics.histogram(
                "coordinator_request_seconds",
                "Request latency by endpoint (parse + queue + operation).",
                ("op",),
            ).labels(op).observe(time.perf_counter() - t0)

    async def _dispatch_inner(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, str, Any]:
        coordinator = self.coordinator
        if method == "GET":
            reads = {
                "/status": coordinator.status_payload,
                "/completed": lambda: {"keys": coordinator.completed_keys()},
                "/results": lambda: {"results": coordinator.results()},
                "/manifest": lambda: coordinator.manifest,
                "/healthz": lambda: {"ok": True},
                "/metrics": lambda: _RawBody(
                    coordinator.metrics_text().encode(), _PROMETHEUS_CONTENT_TYPE
                ),
            }
            fn = reads.get(target)
            if fn is None:
                return 404, "Not Found", {"error": f"unknown endpoint {target}"}
            try:
                return 200, "OK", await self._run(fn)
            except Exception as exc:  # noqa: BLE001 - a 500 must carry the cause
                logger.exception("coordinator read %s failed", target)
                return 500, "Internal Server Error", {"error": f"internal error: {exc}"}
        if method != "POST":
            return 405, "Method Not Allowed", {"error": f"unsupported method {method}"}
        operations = {
            "/claim": (ClaimRequest, coordinator.claim),
            "/claim-batch": (BatchClaimRequest, coordinator.claim_batch),
            "/renew": (LeaseRequest, coordinator.renew),
            "/renew-batch": (BatchLeaseRequest, coordinator.renew_batch),
            "/release": (LeaseRequest, coordinator.release),
            "/release-batch": (BatchLeaseRequest, coordinator.release_batch),
            "/record": (RecordRequest, coordinator.record),
            "/record-batch": (BatchRecordRequest, coordinator.record_batch),
        }
        operation = operations.get(target)
        if operation is None:
            return 404, "Not Found", {"error": f"unknown endpoint {target}"}
        parse, apply = operation
        try:
            payload = json.loads(body) if body else None
            request = parse.from_dict(payload)
        except (ValueError, json.JSONDecodeError) as exc:
            return 400, "Bad Request", {"error": f"malformed request: {exc}"}
        try:
            reply = await self._run(apply, request)
        except UnknownUnitError as exc:
            return 400, "Bad Request", {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - a 500 must carry the cause
            logger.exception("coordinator operation %s failed", target)
            return 500, "Internal Server Error", {"error": f"internal error: {exc}"}
        return 200, "OK", reply.to_dict()

    def _hold_advisory_lease(self) -> None:
        # A SIGKILLed predecessor's stale advisory lease must not block a
        # restart for a full TTL; exactly one coordinator serves a run
        # directory at a time (the port is the real mutex on one host).
        with contextlib.suppress(OSError):
            os.unlink(self._advisory_leases.lease_path(ADVISORY_LEASE_UNIT))
        lease = self._advisory_leases.claim(
            ADVISORY_LEASE_UNIT, f"coordinator-{os.getpid()}"
        )
        if lease is None:
            logger.warning(
                "could not claim the advisory coordinator lease in %s; "
                "`runs gc` may not see this coordinator as live",
                self.coordinator.run_dir,
            )
            return
        self._advisory_lease = lease
        interval = max(self.coordinator.ttl / 4.0, 0.1)

        def _beat() -> None:
            current = lease
            while not self._advisory_stop.wait(interval):
                try:
                    renewed = self._advisory_leases.renew(current)
                except OSError:
                    continue  # transient fs hiccup; retry next beat
                if renewed is not None:
                    current = renewed

        thread = threading.Thread(
            target=_beat, daemon=True, name="coordinator-advisory-lease"
        )
        thread.start()
        self._advisory_thread = thread

    def server_close(self) -> None:
        self._advisory_stop.set()
        if self._advisory_thread is not None:
            self._advisory_thread.join(timeout=5)
        if self._advisory_lease is not None:
            with contextlib.suppress(OSError):
                self._advisory_leases.release(self._advisory_lease)
            self._advisory_lease = None
        # The event loop owns the listening socket once serving; closing
        # it out from under a live selector corrupts the loop, so stop
        # the loop (idempotent) and wait for it before touching the fd.
        self.shutdown()
        if self._serving:
            self._stopped.wait(timeout=10)
        self._pool.shutdown(wait=False)
        self.coordinator.close()
        with contextlib.suppress(OSError):
            self._sock.close()

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def serve_coordinator(
    run_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ttl: float = DEFAULT_LEASE_TTL,
    unit_keys: list[str] | None = None,
    segment_bytes: int | None = None,
) -> CoordinatorHTTPServer:
    """Bind a coordinator server for ``run_dir`` (not yet serving).

    Returns the bound server; call ``serve_forever()`` (optionally from a
    thread) to start handling requests and ``shutdown()``/
    ``server_close()`` to stop.  ``port=0`` binds an ephemeral port —
    read the actual one off ``server.url``.
    """
    coordinator = Coordinator(
        run_dir, ttl=ttl, unit_keys=unit_keys, segment_bytes=segment_bytes
    )
    return CoordinatorHTTPServer((host, port), coordinator)


@contextlib.contextmanager
def running_coordinator(
    run_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ttl: float = DEFAULT_LEASE_TTL,
    unit_keys: list[str] | None = None,
    segment_bytes: int | None = None,
):
    """Context manager: a coordinator serving on a background thread.

    Mostly for tests and in-process benchmarks; the CLI serves in the
    foreground via :func:`serve_coordinator`.
    """
    server = serve_coordinator(
        run_dir,
        host=host,
        port=port,
        ttl=ttl,
        unit_keys=unit_keys,
        segment_bytes=segment_bytes,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True, name="coordinator")
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


# ---------------------------------------------------------------------- #
# Warm standby
# ---------------------------------------------------------------------- #
def _primary_alive(run_dir: Path, probe_host: str, port: int) -> bool:
    """Whether a primary coordinator still looks alive.

    Two independent signals, either one counts: the port accepts a TCP
    connection (the primary's listening socket dies with its process),
    or its advisory lease in ``leases/`` still seems live (the
    conservative heartbeat-or-mtime rule every advisory consumer
    shares).  The lease keeps a standby from stealing the port during a
    network blip; the port probe keeps a *clean* shutdown (which
    releases the lease) from waiting out a TTL.
    """
    try:
        with socket.create_connection((probe_host, port), timeout=0.5):
            return True
    except OSError:
        pass
    lease_dir = LeaseDir(run_dir)
    advisory = lease_dir.lease_path(ADVISORY_LEASE_UNIT)
    now = time.time()
    for path, lease in lease_dir.leases():
        if path == advisory and lease_seems_live(lease, path, now):
            return True
    return False


def standby_coordinator(
    run_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int,
    ttl: float = DEFAULT_LEASE_TTL,
    unit_keys: list[str] | None = None,
    segment_bytes: int | None = None,
    poll: float = 1.0,
    stop: threading.Event | None = None,
) -> CoordinatorHTTPServer | None:
    """Warm standby: block until the primary dies, then take over its port.

    Watches the run directory's snapshot/segment chain while the primary
    serves (logging progression, so an operator can see the standby is
    current), declaring the primary dead only when its advisory lease has
    gone stale *and* the port refuses connections.  Takeover then
    replays the chain — O(live state) thanks to the snapshots the primary
    kept publishing — and binds the **same** ``host:port``, so workers'
    reconnect probes rejoin without any reconfiguration.  Losing the
    bind race to another standby (``EADDRINUSE``) just resumes watching.

    Token fencing makes the handoff safe even mid-batch: the lease table
    (with tokens) survives in the snapshot/journal, so in-flight workers'
    renewals and records keep working, and record-before-release
    exactly-once holds across the transition.

    Returns the bound (not yet serving) server, or ``None`` if ``stop``
    was set first.  ``port`` must be explicit — an ephemeral port would
    take over an address nobody is retrying against.
    """
    if port <= 0:
        raise ValueError("a standby needs the primary's explicit port, not 0")
    run_dir = Path(run_dir)
    probe_host = "127.0.0.1" if host in ("0.0.0.0", "::", "") else host
    last_snapshot: int | None = None
    while stop is None or not stop.is_set():
        if _primary_alive(run_dir, probe_host, port):
            snapshots = journal_snapshots(run_dir)
            newest = snapshots[-1][0] if snapshots else None
            if newest != last_snapshot:
                logger.info(
                    "standby: primary alive on %s:%d; chain at snapshot %s + %d segment(s)",
                    probe_host,
                    port,
                    newest,
                    len(journal_segments(run_dir)),
                )
                last_snapshot = newest
            if stop is not None:
                stop.wait(poll)
            else:
                time.sleep(poll)
            continue
        logger.warning(
            "standby: primary on %s:%d looks dead (port closed, advisory lease "
            "stale); taking over",
            probe_host,
            port,
        )
        try:
            return serve_coordinator(
                run_dir,
                host=host,
                port=port,
                ttl=ttl,
                unit_keys=unit_keys,
                segment_bytes=segment_bytes,
            )
        except OSError:
            # Lost the bind race to another standby (or the primary came
            # back between probe and bind): back off and resume watching.
            logger.info("standby: lost the takeover race for port %d; resuming watch", port)
            if stop is not None:
                stop.wait(poll)
            else:
                time.sleep(poll)
    return None
