"""The HTTP coordinator: multi-host sweeps without a shared filesystem.

``repro sweep serve <run_dir>`` turns one run directory into a network
service.  Workers anywhere (``repro sweep work --coordinator
http://host:port``) drain the sweep through the JSON wire protocol of
:mod:`repro.runtime.backends`; only the coordinator machine ever touches
the run directory.

Design:

**One clock.**  The coordinator owns the lease table in memory and
judges TTL staleness on its own monotonic clock — the cross-host
clock-skew gymnastics of the filesystem protocol (observer-local
unchanged-for-TTL watches) collapse to ``now - heartbeat > ttl``.

**Ownership tokens.**  Every granted lease carries a random token; renew,
release, and record must present it.  An expired lease is re-granted
under a *fresh* token, so a stalled worker that wakes up cannot clobber
the new holder — its renewals and releases are rejected as stale (the
HTTP analogue of the filesystem protocol's atomic-rename steal).

**Record before release, exactly once.**  A result is durably appended to
the recording worker's shard in the run directory (and journaled) before
the coordinator acknowledges it; the worker releases its lease only
after that acknowledgement.  A duplicate record — a stalled worker
finishing a unit someone re-executed — is dropped server-side
(first writer wins; both are bit-identical because every unit owns a
deterministic RNG stream), so the shards on disk never need merge-time
deduplication, though the merged read tolerates it anyway.

**Write-ahead journal with group commit.**  Every lease state transition
(claim, expire, release, record) is appended to ``coordinator.jsonl``
in the run directory and **fsynced before it is acknowledged**.  The
fsync is amortized: transitions enqueue their journal line under the
state lock (so journal order equals state order), then the first waiter
to reach the commit path drains the whole queue with one
write+flush+fsync while later arrivals block on a condition — N
concurrent transitions cost one disk flush, not N
(:class:`_GroupCommitJournal`).  A SIGKILLed coordinator restarts
losslessly: completed results reload from the shards, the lease table
replays from the journal (heartbeats reset to the restart instant,
granting in-flight holders one fresh TTL of grace — the same direction
the filesystem protocol errs).  The journal is read with the shared
torn-line-tolerant reader, so a line torn by the kill is skipped, not
fatal: the worst case is one lease forgotten, which a worker simply
re-claims.

**Batched claims.**  ``POST /claim-batch`` leases up to N units to one
worker under a single ownership token and a single journal record;
``/renew-batch`` and ``/release-batch`` cover the unfinished remainder
in one round trip each.  Members keep individual rows in the lease
table and are dropped one by one as their ``/record`` calls land, so a
worker that dies mid-batch leaks only the *unfinished* units to TTL
expiry — completed members are already recorded and released.

The server is an asyncio event loop speaking HTTP/1.1 with keep-alive
(still stdlib-only).  Workers hold persistent connections, and a
thousand idle sockets cost one loop rather than the thousand OS threads
a thread-per-connection server would pin; the blocking, lock-protected
coordinator operations run on a small thread pool, which is exactly
what piles concurrent transitions into one group commit.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import secrets
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.runtime.backends import (
    AckReply,
    BatchAckReply,
    BatchClaimReply,
    BatchClaimRequest,
    BatchLeaseRequest,
    BatchRecordReply,
    BatchRecordRequest,
    ClaimReply,
    ClaimRequest,
    LeaseRequest,
    RecordRequest,
)
from repro.runtime.checkpoint import (
    CheckpointError,
    RunCheckpoint,
    _ends_with_newline,
    iter_jsonl,
    iter_result_records,
)
from repro.runtime.distributed import DEFAULT_LEASE_TTL, STATUS_SCHEMA_VERSION, LeaseDir

__all__ = [
    "ADVISORY_LEASE_UNIT",
    "JOURNAL_NAME",
    "Coordinator",
    "CoordinatorHTTPServer",
    "UnknownUnitError",
    "serve_coordinator",
    "running_coordinator",
]

logger = logging.getLogger(__name__)

#: Journal file name inside the coordinator's run directory.
JOURNAL_NAME = "coordinator.jsonl"
#: The advisory lease a serving coordinator holds in its run directory's
#: ``leases/`` dir.  Coordinator workers leave no lease files (their
#: leases live in server memory), so without this marker the lease-aware
#: ``runs gc`` could collect a directory a live coordinator is serving.
#: Renewed like any worker lease; goes stale when the coordinator dies,
#: so a dead coordinator does not protect its directory forever.
ADVISORY_LEASE_UNIT = "__coordinator__"


class UnknownUnitError(ValueError):
    """A request named a unit that is not part of this run — a worker
    draining the wrong coordinator, or a version-skewed plan."""


def _event_units(event: dict) -> list[str] | None:
    """The unit keys a journal event covers: singular ``unit`` (the
    per-unit protocol) or plural ``units`` (batched claims/releases)."""
    unit = event.get("unit")
    if isinstance(unit, str):
        return [unit]
    units = event.get("units")
    if isinstance(units, list) and units and all(isinstance(u, str) for u in units):
        return units
    return None


@dataclass
class _LeaseEntry:
    """One in-flight lease in the coordinator's table."""

    worker: str
    token: str
    ttl: float
    reclaimed: bool
    heartbeat: float  # coordinator-monotonic instant of the last beat


class _GroupCommitJournal:
    """Write-ahead JSONL journal with group commit.

    :meth:`enqueue` buffers one event and returns a ticket; it must be
    called under the caller's state lock, which is what fixes journal
    order = state order.  :meth:`wait_durable` (called *outside* that
    lock) blocks until the ticket's bytes are on disk: the first waiter
    to find no commit in progress becomes the leader and drains the
    whole buffer with one ``write`` + ``flush`` + ``os.fsync`` while
    later arrivals wait on the condition.  N concurrent transitions
    therefore cost one fsync, and a request is acknowledged only after
    its record is durable.

    A failed commit poisons exactly the tickets in the failed batch
    (their waiters re-raise the write error); later enqueues proceed —
    the torn-line-tolerant journal reader makes a partially-written
    batch a recoverable event, not corruption.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._cond = threading.Condition()
        self._pending: list[bytes] = []
        self._enqueued = 0  # tickets handed out
        self._durable = 0  # tickets whose bytes are fsynced (or poisoned)
        self._writing = False  # a leader is inside write+fsync
        self._failed: tuple[int, Exception] | None = None  # (through_ticket, cause)
        self._fh: Any | None = None

    def enqueue(self, event: dict) -> int:
        """Buffer one event; caller must hold the state lock."""
        line = (json.dumps(event) + "\n").encode()
        with self._cond:
            self._pending.append(line)
            self._enqueued += 1
            return self._enqueued

    def wait_durable(self, ticket: int) -> None:
        """Block until ``ticket``'s event is on disk (leader/follower)."""
        while True:
            with self._cond:
                if self._failed is not None and ticket <= self._failed[0]:
                    raise self._failed[1]
                if self._durable >= ticket:
                    return
                if self._writing or not self._pending:
                    self._cond.wait(timeout=1.0)
                    continue
                batch = self._pending
                self._pending = []
                self._writing = True
                through = self._durable + len(batch)
            try:
                self._commit(b"".join(batch))
            except Exception as exc:  # noqa: BLE001 - waiters must see the cause
                with self._cond:
                    self._failed = (through, exc)
                    self._durable = through  # unblock; poisoned tickets raise
                    self._writing = False
                    self._cond.notify_all()
                raise
            with self._cond:
                self._durable = through
                self._writing = False
                self._cond.notify_all()

    def _commit(self, data: bytes) -> None:
        if self._fh is None:
            fh = self.path.open("ab")
            # Repair a killed predecessor's torn tail before appending,
            # exactly as append_jsonl would.
            if fh.tell() > 0 and not _ends_with_newline(self.path):
                fh.write(b"\n")
            self._fh = fh
        self._fh.write(data)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._cond:
            fh, self._fh = self._fh, None
        if fh is not None:
            with contextlib.suppress(OSError):
                fh.close()


class Coordinator:
    """Lock-protected lease table + result store over one run directory.

    All methods are thread-safe (the HTTP server calls them from a
    bounded thread pool).  State-changing methods enqueue their journal
    event under the state lock — fixing journal order = state order —
    then wait for the group commit *outside* the lock before returning,
    so every acknowledged transition is durable and concurrent
    transitions share one fsync.
    """

    def __init__(
        self,
        run_dir: str | Path,
        *,
        ttl: float = DEFAULT_LEASE_TTL,
        unit_keys: list[str] | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.run_dir = Path(run_dir)
        self.ttl = float(ttl)
        self.checkpoint = RunCheckpoint(self.run_dir)  # raw results; codecs stay client-side
        manifest = self.checkpoint.manifest()
        if manifest is None:
            raise CheckpointError(
                f"{self.run_dir} has no {RunCheckpoint.MANIFEST_NAME}; initialize it "
                "with `repro sweep serve --spec spec.json` (or run/work it once)"
            )
        if not isinstance(manifest, dict):
            raise CheckpointError(f"{self.run_dir} manifest is not an object")
        self.manifest = manifest
        self.unit_keys = None if unit_keys is None else set(unit_keys)
        total = manifest.get("units")
        self.total_units: int | None = total if isinstance(total, int) else None
        self._journal_path = self.run_dir / JOURNAL_NAME
        self._journal = _GroupCommitJournal(self._journal_path)
        self._lock = threading.Lock()
        self._results: dict[str, Any] = {}
        self._shard_counts: dict[str, int] = {}
        self._duplicates = 0
        self._leases: dict[str, _LeaseEntry] = {}
        self._recover()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def _recover(self) -> None:
        """Rebuild in-memory state after a (possibly SIGKILLed) restart.

        Results come from the run directory's shard files (the durable
        source of truth), the lease table from replaying the journal.
        Heartbeats reset to *now*: in-flight holders get one fresh TTL to
        prove they are alive before their units are re-granted.
        """
        for path in self.checkpoint.result_paths():
            for record in iter_result_records(path):
                key = record["key"]
                if key in self._results:
                    self._duplicates += 1
                    continue
                self._results[key] = record["result"]
                self._shard_counts[path.name] = self._shard_counts.get(path.name, 0) + 1
        now = time.monotonic()
        replayed = 0
        for event in iter_jsonl(self._journal_path, what="coordinator journal"):
            if not isinstance(event, dict):
                continue
            kind = event.get("event")
            units = _event_units(event)
            if units is None:
                continue
            replayed += 1
            if kind == "claim":
                try:
                    worker = str(event["worker"])
                    token = str(event["token"])
                    ttl = float(event["ttl"])
                except (KeyError, TypeError, ValueError):
                    continue  # torn mid-object; the lease is simply forgotten
                reclaimed = event.get("reclaimed", False)
                if isinstance(reclaimed, list):
                    reclaimed_units = {u for u in reclaimed if isinstance(u, str)}
                else:
                    reclaimed_units = set(units) if reclaimed is True else set()
                for unit in units:
                    self._leases[unit] = _LeaseEntry(
                        worker=worker,
                        token=token,
                        ttl=ttl,
                        reclaimed=unit in reclaimed_units,
                        heartbeat=now,
                    )
            elif kind in ("release", "expire", "record"):
                for unit in units:
                    self._leases.pop(unit, None)
        # A record whose journal line was torn still completed durably
        # (the shard append precedes the journal append's acknowledgement
        # path only in memory; both precede the reply) — drop any lease
        # the replay left on a completed unit.
        for unit in [u for u in self._leases if u in self._results]:
            del self._leases[unit]
        if replayed or self._results:
            logger.info(
                "coordinator recovered %d completed unit(s) and %d in-flight "
                "lease(s) from %s",
                len(self._results),
                len(self._leases),
                self.run_dir,
            )

    def _wait(self, ticket: int | None) -> None:
        """Block until an enqueued journal event is durable (group
        commit); called *outside* the state lock so commits coalesce."""
        if ticket is not None:
            self._journal.wait_durable(ticket)

    def close(self) -> None:
        """Release the journal file handle (clean shutdown only)."""
        self._journal.close()

    def _validate_unit(self, unit: str) -> None:
        if self.unit_keys is not None and unit not in self.unit_keys:
            raise UnknownUnitError(f"unit {unit!r} is not part of this run")

    def _expire_locked(self, unit: str, entry: _LeaseEntry, claimant: str) -> int:
        """Journal + drop one stale lease; returns its commit ticket."""
        ticket = self._journal.enqueue(
            {"event": "expire", "unit": unit, "worker": entry.worker, "token": entry.token}
        )
        del self._leases[unit]
        logger.warning(
            "expired stale lease on unit %r (worker %s silent past its "
            "%.0fs ttl); re-granting to %s",
            unit,
            entry.worker,
            entry.ttl,
            claimant,
        )
        return ticket

    # ------------------------------------------------------------------ #
    # The protocol operations
    # ------------------------------------------------------------------ #
    def claim(self, request: ClaimRequest) -> ClaimReply:
        """Grant ``request.unit`` to ``request.worker`` if it is free.

        Exactly one winner per unit: the table mutation happens under the
        lock, so concurrent claims of one unit serialize and the losers
        see the winner's live lease.  An expired lease is journaled as an
        ``expire`` and re-granted with ``reclaimed=True``; a re-claim by
        the *current holder* (a retry after a lost reply) idempotently
        re-grants the same token.
        """
        with self._lock:
            reply, ticket = self._claim_locked(request)
        self._wait(ticket)
        return reply

    def _claim_locked(self, request: ClaimRequest) -> tuple[ClaimReply, int | None]:
        self._validate_unit(request.unit)
        if request.unit in self._results:
            return ClaimReply(granted=False, completed=True), None
        now = time.monotonic()
        entry = self._leases.get(request.unit)
        reclaimed = False
        if entry is not None:
            if entry.worker == request.worker:
                entry.heartbeat = now
                return (
                    ClaimReply(
                        granted=True,
                        token=entry.token,
                        ttl=entry.ttl,
                        reclaimed=entry.reclaimed,
                    ),
                    None,
                )
            if now - entry.heartbeat <= entry.ttl:
                return ClaimReply(granted=False), None
            self._expire_locked(request.unit, entry, request.worker)
            reclaimed = True
        token = secrets.token_hex(8)
        ticket = self._journal.enqueue(
            {
                "event": "claim",
                "unit": request.unit,
                "worker": request.worker,
                "token": token,
                "ttl": self.ttl,
                "reclaimed": reclaimed,
            }
        )
        self._leases[request.unit] = _LeaseEntry(
            worker=request.worker,
            token=token,
            ttl=self.ttl,
            reclaimed=reclaimed,
            heartbeat=now,
        )
        return ClaimReply(granted=True, token=token, ttl=self.ttl, reclaimed=reclaimed), ticket

    def claim_batch(self, request: BatchClaimRequest) -> BatchClaimReply:
        """Grant as many of ``request.units`` as possible to one worker
        under **one token and one journal record**.

        Units already recorded come back in ``completed``; units held by
        a live peer are silently omitted; expired leases are journaled
        as ``expire`` events and re-granted (listed in ``reclaimed``).
        Units the *requesting worker* already holds — a retry after a
        lost reply, since its old token is now unreachable — are folded
        into the fresh batch token.  Each granted member keeps its own
        row in the lease table, so records drop members one at a time
        and a mid-batch death leaks only the unfinished remainder.
        """
        with self._lock:
            for unit in request.units:
                self._validate_unit(unit)
            now = time.monotonic()
            granted: list[str] = []
            reclaimed: list[str] = []
            completed: list[str] = []
            for unit in request.units:
                if unit in self._results:
                    completed.append(unit)
                    continue
                entry = self._leases.get(unit)
                if entry is not None:
                    if entry.worker != request.worker:
                        if now - entry.heartbeat <= entry.ttl:
                            continue  # a live peer holds it
                        self._expire_locked(unit, entry, request.worker)
                        reclaimed.append(unit)
                    else:
                        # The holder retrying a lost reply: fold its units
                        # into this batch under the fresh token.
                        if entry.reclaimed:
                            reclaimed.append(unit)
                        del self._leases[unit]
                granted.append(unit)
            if not granted:
                return BatchClaimReply(granted=(), completed=tuple(completed))
            token = secrets.token_hex(8)
            ticket = self._journal.enqueue(
                {
                    "event": "claim",
                    "units": granted,
                    "worker": request.worker,
                    "token": token,
                    "ttl": self.ttl,
                    "reclaimed": reclaimed,
                }
            )
            reclaimed_set = set(reclaimed)
            for unit in granted:
                self._leases[unit] = _LeaseEntry(
                    worker=request.worker,
                    token=token,
                    ttl=self.ttl,
                    reclaimed=unit in reclaimed_set,
                    heartbeat=now,
                )
            reply = BatchClaimReply(
                granted=tuple(granted),
                token=token,
                ttl=self.ttl,
                reclaimed=tuple(reclaimed),
                completed=tuple(completed),
            )
        self._wait(ticket)
        return reply

    def renew(self, request: LeaseRequest) -> AckReply:
        """Refresh a lease's heartbeat; stale tokens are rejected.

        Renewals are *not* journaled — after a restart every surviving
        lease's heartbeat resets to the restart instant anyway, so the
        per-beat write would buy nothing.
        """
        with self._lock:
            entry = self._leases.get(request.unit)
            if entry is None or entry.token != request.token:
                return AckReply(ok=False, stale=True)
            entry.heartbeat = time.monotonic()
            return AckReply(ok=True)

    def renew_batch(self, request: BatchLeaseRequest) -> BatchAckReply:
        """Refresh the heartbeat of every listed unit still owned by the
        presented token; ``stale`` reports the rest (recorded, expired,
        or re-granted members).  Not journaled, like single renew."""
        with self._lock:
            now = time.monotonic()
            stale: list[str] = []
            owned = 0
            for unit in request.units:
                entry = self._leases.get(unit)
                if entry is None or entry.token != request.token:
                    stale.append(unit)
                else:
                    entry.heartbeat = now
                    owned += 1
        return BatchAckReply(ok=owned > 0, stale=tuple(stale))

    def release(self, request: LeaseRequest) -> AckReply:
        """Drop a lease — only for its current token.

        Releasing an already-gone lease acknowledges idempotently (the
        retry-after-lost-reply case); releasing with a superseded token
        is rejected so a stalled worker cannot unlink the new holder's
        claim.
        """
        with self._lock:
            entry = self._leases.get(request.unit)
            if entry is None:
                return AckReply(ok=True)
            if entry.token != request.token:
                return AckReply(ok=False, stale=True)
            ticket = self._journal.enqueue(
                {
                    "event": "release",
                    "unit": request.unit,
                    "worker": request.worker,
                    "token": request.token,
                }
            )
            del self._leases[request.unit]
        self._wait(ticket)
        return AckReply(ok=True)

    def release_batch(self, request: BatchLeaseRequest) -> BatchAckReply:
        """Drop every listed unit still owned by the presented token,
        under one journal record.  Vanished members acknowledge
        idempotently; superseded tokens are reported in ``stale`` and
        left alone (a stalled worker cannot unlink the new holder)."""
        with self._lock:
            released: list[str] = []
            stale: list[str] = []
            for unit in request.units:
                entry = self._leases.get(unit)
                if entry is None:
                    continue  # already gone: idempotent
                if entry.token != request.token:
                    stale.append(unit)
                    continue
                released.append(unit)
            ticket = None
            if released:
                ticket = self._journal.enqueue(
                    {
                        "event": "release",
                        "units": released,
                        "worker": request.worker,
                        "token": request.token,
                    }
                )
                for unit in released:
                    del self._leases[unit]
        self._wait(ticket)
        return BatchAckReply(ok=True, stale=tuple(stale))

    def record(self, request: RecordRequest) -> AckReply:
        """Durably record one unit's result, exactly once.

        The shard append (and journal line) happen before the
        acknowledgement, and the worker releases only after being
        acknowledged — record-before-release end to end.  A unit already
        recorded acknowledges as a duplicate without writing (first
        writer wins).  A *stale* token does not block recording as long
        as the unit is unrecorded: like the filesystem protocol, a robbed
        worker that finishes first contributes its (bit-identical) result
        rather than wasting it — and the superseded holder's lease is
        dropped so the unit cannot be claimed again.
        """
        with self._lock:
            self._validate_unit(request.unit)
            if request.unit in self._results:
                self._duplicates += 1
                logger.warning(
                    "duplicate record for unit %r from worker %s dropped "
                    "(first writer wins)",
                    request.unit,
                    request.worker,
                )
                return AckReply(ok=True, duplicate=True)
            entry = self._leases.get(request.unit)
            stale = entry is None or entry.token != request.token
            if stale:
                logger.warning(
                    "recording unit %r from worker %s despite a stale lease "
                    "token (its lease was reclaimed while it ran)",
                    request.unit,
                    request.worker,
                )
            shard_name = self.checkpoint.shard_path(request.worker).name
            self.checkpoint.record(request.unit, request.result, shard=request.worker)
            ticket = self._journal.enqueue(
                {"event": "record", "unit": request.unit, "worker": request.worker}
            )
            self._results[request.unit] = request.result
            self._shard_counts[shard_name] = self._shard_counts.get(shard_name, 0) + 1
            self._leases.pop(request.unit, None)
        self._wait(ticket)
        return AckReply(ok=True)

    def record_batch(self, request: BatchRecordRequest) -> BatchRecordReply:
        """Durably record several units' results in one flush.

        Per-unit semantics match :meth:`record` — a unit already recorded
        is dropped as a duplicate (first writer wins), a stale token does
        not block recording, and every listed unit's lease is dropped.
        The writes are batch-grained: one shard append (one open+flush
        covering every line), one journal event, one group commit for
        the whole flush — the amortization that lets sub-second units
        keep the coordinator out of the critical path.
        """
        with self._lock:
            for unit in request.units:
                self._validate_unit(unit)
            duplicates: list[str] = []
            fresh: list[tuple[str, Any]] = []
            for unit, result in zip(request.units, request.results):
                if unit in self._results:
                    duplicates.append(unit)
                    continue
                entry = self._leases.get(unit)
                if entry is None or entry.token != request.token:
                    logger.warning(
                        "recording unit %r from worker %s despite a stale lease "
                        "token (its lease was reclaimed while it ran)",
                        unit,
                        request.worker,
                    )
                fresh.append((unit, result))
            ticket = None
            if fresh:
                shard_name = self.checkpoint.shard_path(request.worker).name
                self.checkpoint.record_many(fresh, shard=request.worker)
                ticket = self._journal.enqueue(
                    {
                        "event": "record",
                        "units": [unit for unit, _ in fresh],
                        "worker": request.worker,
                    }
                )
                for unit, result in fresh:
                    self._results[unit] = result
                self._shard_counts[shard_name] = (
                    self._shard_counts.get(shard_name, 0) + len(fresh)
                )
            if duplicates:
                self._duplicates += len(duplicates)
                logger.warning(
                    "duplicate record(s) for %d unit(s) from worker %s dropped "
                    "(first writer wins)",
                    len(duplicates),
                    request.worker,
                )
            for unit in request.units:
                self._leases.pop(unit, None)
        self._wait(ticket)
        return BatchRecordReply(ok=True, duplicates=tuple(duplicates))

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def completed_keys(self) -> list[str]:
        with self._lock:
            return sorted(self._results)

    def results(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._results)

    @property
    def complete(self) -> bool:
        with self._lock:
            return self.total_units is not None and len(self._results) >= self.total_units

    def status_payload(self) -> dict:
        """A point-in-time snapshot in the shared status schema — the
        same shape :meth:`repro.runtime.distributed.RunDirStatus.
        to_payload` produces for filesystem run directories."""
        with self._lock:
            now = time.monotonic()
            active: list[dict] = []
            stale: list[dict] = []
            for unit in sorted(self._leases):
                entry = self._leases[unit]
                item = {
                    "unit": unit,
                    "worker": entry.worker,
                    "heartbeat_age": max(round(now - entry.heartbeat, 3), 0.0),
                    "ttl": entry.ttl,
                }
                (active if now - entry.heartbeat <= entry.ttl else stale).append(item)
            kind = self.manifest.get("kind")
            spec = self.manifest.get("spec")
            name = spec.get("name") if isinstance(spec, dict) else None
            completed = len(self._results)
            return {
                "schema": STATUS_SCHEMA_VERSION,
                "backend": "coordinator",
                "source": str(self.run_dir),
                "kind": kind if isinstance(kind, str) else None,
                "name": name if isinstance(name, str) else None,
                "complete": self.total_units is not None and completed >= self.total_units,
                "total_units": self.total_units,
                "completed_units": completed,
                "shard_counts": dict(sorted(self._shard_counts.items())),
                "duplicate_records": self._duplicates,
                "active_leases": active,
                "stale_leases": stale,
                "torn_leases": 0,
                "torn_live": 0,
            }


# ---------------------------------------------------------------------- #
# The HTTP face
# ---------------------------------------------------------------------- #
#: Worker threads for blocking coordinator operations.  Small on
#: purpose: the ops are short critical sections plus a group-commit
#: wait, so a handful of threads saturate the lock while any number of
#: idle keep-alive connections cost the event loop nothing.
_OPERATION_THREADS = 32


class CoordinatorHTTPServer:
    """Asyncio HTTP/1.1 keep-alive server bound to one :class:`Coordinator`.

    Replaces the earlier thread-per-request ``ThreadingHTTPServer``: a
    large fleet holding persistent connections would pin one OS thread
    each there, while one event loop holds a thousand idle sockets for
    free.  The blocking, lock-protected coordinator operations run on a
    bounded thread pool — which is also what piles concurrent journal
    transitions into a single group commit.

    The listening socket is bound (and ``server_address`` fixed)
    synchronously in the constructor, so ``url`` is valid before
    ``serve_forever()`` starts the loop on whatever thread calls it.
    The public surface matches the old server: ``url``,
    ``serve_forever()`` (blocking), ``shutdown()`` (thread-safe),
    ``server_close()``, ``.coordinator``.

    While alive, the server maintains an advisory lease file
    (:data:`ADVISORY_LEASE_UNIT`) in the run directory so everything
    that respects filesystem leases — ``runs gc``, ``sweep status``,
    fresh-initialization refusal — sees the directory as actively
    worked, even though coordinator workers themselves never touch it.
    """

    def __init__(self, address: tuple[str, int], coordinator: Coordinator) -> None:
        self.coordinator = coordinator
        self._sock = socket.create_server(address, backlog=512)
        self._sock.setblocking(False)
        self.server_address = self._sock.getsockname()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._shutdown_flag = threading.Event()
        self._serving = False
        self._stopped = threading.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=_OPERATION_THREADS, thread_name_prefix="coordinator-op"
        )
        self._advisory_leases = LeaseDir(coordinator.run_dir, ttl=coordinator.ttl)
        self._advisory_stop = threading.Event()
        self._advisory_thread: threading.Thread | None = None
        self._advisory_lease = None
        self._hold_advisory_lease()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        self._serving = True
        try:
            asyncio.run(self._serve())
        finally:
            self._stopped.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._handle_client, sock=self._sock)
        if self._shutdown_flag.is_set():  # shutdown() raced serve_forever()
            self._stop_event.set()
        async with server:
            await self._stop_event.wait()

    def shutdown(self) -> None:
        """Stop ``serve_forever`` from any thread."""
        self._shutdown_flag.set()
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None and loop.is_running():
            with contextlib.suppress(RuntimeError):  # loop closed meanwhile
                loop.call_soon_threadsafe(stop.set)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    return  # client closed between requests
                except asyncio.LimitOverrunError:
                    return  # absurd header block; drop the connection
                request_line, _, header_blob = head.partition(b"\r\n")
                parts = request_line.decode("latin-1").split()
                if len(parts) < 2:
                    return
                method, target = parts[0], parts[1]
                headers: dict[str, str] = {}
                for raw in header_blob.decode("latin-1").split("\r\n"):
                    name, sep, value = raw.partition(":")
                    if sep:
                        headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    return
                body = await reader.readexactly(length) if length > 0 else b""
                close_after = headers.get("connection", "").lower() == "close"
                status, reason, payload = await self._dispatch(method, target, body)
                data = json.dumps(payload).encode()
                head_out = (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"{'Connection: close' + chr(13) + chr(10) if close_after else ''}"
                    "\r\n"
                )
                writer.write(head_out.encode("latin-1") + data)
                await writer.drain()
                if close_after:
                    return
        except asyncio.CancelledError:
            pass  # loop shutting down mid-request; client retries are idempotent
        except (ConnectionError, TimeoutError, OSError):
            pass  # client vanished mid-request; its retry is idempotent
        finally:
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _run(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, lambda: fn(*args))

    async def _dispatch(self, method: str, target: str, body: bytes) -> tuple[int, str, Any]:
        coordinator = self.coordinator
        if method == "GET":
            reads = {
                "/status": coordinator.status_payload,
                "/completed": lambda: {"keys": coordinator.completed_keys()},
                "/results": lambda: {"results": coordinator.results()},
                "/manifest": lambda: coordinator.manifest,
                "/healthz": lambda: {"ok": True},
            }
            fn = reads.get(target)
            if fn is None:
                return 404, "Not Found", {"error": f"unknown endpoint {target}"}
            try:
                return 200, "OK", await self._run(fn)
            except Exception as exc:  # noqa: BLE001 - a 500 must carry the cause
                logger.exception("coordinator read %s failed", target)
                return 500, "Internal Server Error", {"error": f"internal error: {exc}"}
        if method != "POST":
            return 405, "Method Not Allowed", {"error": f"unsupported method {method}"}
        operations = {
            "/claim": (ClaimRequest, coordinator.claim),
            "/claim-batch": (BatchClaimRequest, coordinator.claim_batch),
            "/renew": (LeaseRequest, coordinator.renew),
            "/renew-batch": (BatchLeaseRequest, coordinator.renew_batch),
            "/release": (LeaseRequest, coordinator.release),
            "/release-batch": (BatchLeaseRequest, coordinator.release_batch),
            "/record": (RecordRequest, coordinator.record),
            "/record-batch": (BatchRecordRequest, coordinator.record_batch),
        }
        operation = operations.get(target)
        if operation is None:
            return 404, "Not Found", {"error": f"unknown endpoint {target}"}
        parse, apply = operation
        try:
            payload = json.loads(body) if body else None
            request = parse.from_dict(payload)
        except (ValueError, json.JSONDecodeError) as exc:
            return 400, "Bad Request", {"error": f"malformed request: {exc}"}
        try:
            reply = await self._run(apply, request)
        except UnknownUnitError as exc:
            return 400, "Bad Request", {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - a 500 must carry the cause
            logger.exception("coordinator operation %s failed", target)
            return 500, "Internal Server Error", {"error": f"internal error: {exc}"}
        return 200, "OK", reply.to_dict()

    def _hold_advisory_lease(self) -> None:
        # A SIGKILLed predecessor's stale advisory lease must not block a
        # restart for a full TTL; exactly one coordinator serves a run
        # directory at a time (the port is the real mutex on one host).
        with contextlib.suppress(OSError):
            os.unlink(self._advisory_leases.lease_path(ADVISORY_LEASE_UNIT))
        lease = self._advisory_leases.claim(
            ADVISORY_LEASE_UNIT, f"coordinator-{os.getpid()}"
        )
        if lease is None:
            logger.warning(
                "could not claim the advisory coordinator lease in %s; "
                "`runs gc` may not see this coordinator as live",
                self.coordinator.run_dir,
            )
            return
        self._advisory_lease = lease
        interval = max(self.coordinator.ttl / 4.0, 0.1)

        def _beat() -> None:
            current = lease
            while not self._advisory_stop.wait(interval):
                try:
                    renewed = self._advisory_leases.renew(current)
                except OSError:
                    continue  # transient fs hiccup; retry next beat
                if renewed is not None:
                    current = renewed

        thread = threading.Thread(
            target=_beat, daemon=True, name="coordinator-advisory-lease"
        )
        thread.start()
        self._advisory_thread = thread

    def server_close(self) -> None:
        self._advisory_stop.set()
        if self._advisory_thread is not None:
            self._advisory_thread.join(timeout=5)
        if self._advisory_lease is not None:
            with contextlib.suppress(OSError):
                self._advisory_leases.release(self._advisory_lease)
            self._advisory_lease = None
        # The event loop owns the listening socket once serving; closing
        # it out from under a live selector corrupts the loop, so stop
        # the loop (idempotent) and wait for it before touching the fd.
        self.shutdown()
        if self._serving:
            self._stopped.wait(timeout=10)
        self._pool.shutdown(wait=False)
        self.coordinator.close()
        with contextlib.suppress(OSError):
            self._sock.close()

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def serve_coordinator(
    run_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ttl: float = DEFAULT_LEASE_TTL,
    unit_keys: list[str] | None = None,
) -> CoordinatorHTTPServer:
    """Bind a coordinator server for ``run_dir`` (not yet serving).

    Returns the bound server; call ``serve_forever()`` (optionally from a
    thread) to start handling requests and ``shutdown()``/
    ``server_close()`` to stop.  ``port=0`` binds an ephemeral port —
    read the actual one off ``server.url``.
    """
    coordinator = Coordinator(run_dir, ttl=ttl, unit_keys=unit_keys)
    return CoordinatorHTTPServer((host, port), coordinator)


@contextlib.contextmanager
def running_coordinator(
    run_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ttl: float = DEFAULT_LEASE_TTL,
    unit_keys: list[str] | None = None,
):
    """Context manager: a coordinator serving on a background thread.

    Mostly for tests and in-process benchmarks; the CLI serves in the
    foreground via :func:`serve_coordinator`.
    """
    server = serve_coordinator(run_dir, host=host, port=port, ttl=ttl, unit_keys=unit_keys)
    thread = threading.Thread(target=server.serve_forever, daemon=True, name="coordinator")
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
