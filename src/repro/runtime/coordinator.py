"""The HTTP coordinator: multi-host sweeps without a shared filesystem.

``repro sweep serve <run_dir>`` turns one run directory into a network
service.  Workers anywhere (``repro sweep work --coordinator
http://host:port``) drain the sweep through the JSON wire protocol of
:mod:`repro.runtime.backends`; only the coordinator machine ever touches
the run directory.

Design:

**One clock.**  The coordinator owns the lease table in memory and
judges TTL staleness on its own monotonic clock — the cross-host
clock-skew gymnastics of the filesystem protocol (observer-local
unchanged-for-TTL watches) collapse to ``now - heartbeat > ttl``.

**Ownership tokens.**  Every granted lease carries a random token; renew,
release, and record must present it.  An expired lease is re-granted
under a *fresh* token, so a stalled worker that wakes up cannot clobber
the new holder — its renewals and releases are rejected as stale (the
HTTP analogue of the filesystem protocol's atomic-rename steal).

**Record before release, exactly once.**  A result is durably appended to
the recording worker's shard in the run directory (and journaled) before
the coordinator acknowledges it; the worker releases its lease only
after that acknowledgement.  A duplicate record — a stalled worker
finishing a unit someone re-executed — is dropped server-side
(first writer wins; both are bit-identical because every unit owns a
deterministic RNG stream), so the shards on disk never need merge-time
deduplication, though the merged read tolerates it anyway.

**Write-ahead journal.**  Every lease state transition (claim, expire,
release, record) is appended to ``coordinator.jsonl`` in the run
directory *before* it is applied in memory and acknowledged.  A
SIGKILLed coordinator restarts losslessly: completed results reload from
the shards, the lease table replays from the journal (heartbeats reset
to the restart instant, granting in-flight holders one fresh TTL of
grace — the same direction the filesystem protocol errs).  The journal
is read with the shared torn-line-tolerant reader, so a line torn by the
kill is skipped, not fatal: the worst case is one lease forgotten, which
a worker simply re-claims.

The server is the stdlib :class:`~http.server.ThreadingHTTPServer` —
one thread per request over one lock-protected state object.  That is
deliberately boring: PISA units run for seconds, so coordination traffic
is hundreds of requests per second at most (measured in
``benchmarks/bench_runtime.py``), far below what a threaded stdlib
server sustains — and it keeps the runtime dependency-free.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import secrets
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.runtime.backends import (
    AckReply,
    ClaimReply,
    ClaimRequest,
    LeaseRequest,
    RecordRequest,
)
from repro.runtime.checkpoint import (
    CheckpointError,
    RunCheckpoint,
    append_jsonl,
    iter_jsonl,
    iter_result_records,
)
from repro.runtime.distributed import DEFAULT_LEASE_TTL, STATUS_SCHEMA_VERSION, LeaseDir

__all__ = [
    "ADVISORY_LEASE_UNIT",
    "JOURNAL_NAME",
    "Coordinator",
    "CoordinatorHTTPServer",
    "UnknownUnitError",
    "serve_coordinator",
    "running_coordinator",
]

logger = logging.getLogger(__name__)

#: Journal file name inside the coordinator's run directory.
JOURNAL_NAME = "coordinator.jsonl"
#: The advisory lease a serving coordinator holds in its run directory's
#: ``leases/`` dir.  Coordinator workers leave no lease files (their
#: leases live in server memory), so without this marker the lease-aware
#: ``runs gc`` could collect a directory a live coordinator is serving.
#: Renewed like any worker lease; goes stale when the coordinator dies,
#: so a dead coordinator does not protect its directory forever.
ADVISORY_LEASE_UNIT = "__coordinator__"


class UnknownUnitError(ValueError):
    """A request named a unit that is not part of this run — a worker
    draining the wrong coordinator, or a version-skewed plan."""


@dataclass
class _LeaseEntry:
    """One in-flight lease in the coordinator's table."""

    worker: str
    token: str
    ttl: float
    reclaimed: bool
    heartbeat: float  # coordinator-monotonic instant of the last beat


class Coordinator:
    """Lock-protected lease table + result store over one run directory.

    All methods are thread-safe (the HTTP server calls them from one
    thread per request).  State-changing methods journal before they
    mutate, so acknowledged transitions survive a SIGKILL.
    """

    def __init__(
        self,
        run_dir: str | Path,
        *,
        ttl: float = DEFAULT_LEASE_TTL,
        unit_keys: list[str] | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.run_dir = Path(run_dir)
        self.ttl = float(ttl)
        self.checkpoint = RunCheckpoint(self.run_dir)  # raw results; codecs stay client-side
        manifest = self.checkpoint.manifest()
        if manifest is None:
            raise CheckpointError(
                f"{self.run_dir} has no {RunCheckpoint.MANIFEST_NAME}; initialize it "
                "with `repro sweep serve --spec spec.json` (or run/work it once)"
            )
        if not isinstance(manifest, dict):
            raise CheckpointError(f"{self.run_dir} manifest is not an object")
        self.manifest = manifest
        self.unit_keys = None if unit_keys is None else set(unit_keys)
        total = manifest.get("units")
        self.total_units: int | None = total if isinstance(total, int) else None
        self._journal_path = self.run_dir / JOURNAL_NAME
        self._lock = threading.Lock()
        self._results: dict[str, Any] = {}
        self._shard_counts: dict[str, int] = {}
        self._duplicates = 0
        self._leases: dict[str, _LeaseEntry] = {}
        self._recover()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def _recover(self) -> None:
        """Rebuild in-memory state after a (possibly SIGKILLed) restart.

        Results come from the run directory's shard files (the durable
        source of truth), the lease table from replaying the journal.
        Heartbeats reset to *now*: in-flight holders get one fresh TTL to
        prove they are alive before their units are re-granted.
        """
        for path in self.checkpoint.result_paths():
            for record in iter_result_records(path):
                key = record["key"]
                if key in self._results:
                    self._duplicates += 1
                    continue
                self._results[key] = record["result"]
                self._shard_counts[path.name] = self._shard_counts.get(path.name, 0) + 1
        now = time.monotonic()
        replayed = 0
        for event in iter_jsonl(self._journal_path, what="coordinator journal"):
            if not isinstance(event, dict):
                continue
            kind = event.get("event")
            unit = event.get("unit")
            if not isinstance(unit, str):
                continue
            replayed += 1
            if kind == "claim":
                try:
                    self._leases[unit] = _LeaseEntry(
                        worker=str(event["worker"]),
                        token=str(event["token"]),
                        ttl=float(event["ttl"]),
                        reclaimed=bool(event.get("reclaimed", False)),
                        heartbeat=now,
                    )
                except (KeyError, TypeError, ValueError):
                    continue  # torn mid-object; the lease is simply forgotten
            elif kind in ("release", "expire", "record"):
                self._leases.pop(unit, None)
        # A record whose journal line was torn still completed durably
        # (the shard append precedes the journal append's acknowledgement
        # path only in memory; both precede the reply) — drop any lease
        # the replay left on a completed unit.
        for unit in [u for u in self._leases if u in self._results]:
            del self._leases[unit]
        if replayed or self._results:
            logger.info(
                "coordinator recovered %d completed unit(s) and %d in-flight "
                "lease(s) from %s",
                len(self._results),
                len(self._leases),
                self.run_dir,
            )

    def _journal(self, event: dict) -> None:
        append_jsonl(self._journal_path, event)

    def _validate_unit(self, unit: str) -> None:
        if self.unit_keys is not None and unit not in self.unit_keys:
            raise UnknownUnitError(f"unit {unit!r} is not part of this run")

    # ------------------------------------------------------------------ #
    # The protocol operations
    # ------------------------------------------------------------------ #
    def claim(self, request: ClaimRequest) -> ClaimReply:
        """Grant ``request.unit`` to ``request.worker`` if it is free.

        Exactly one winner per unit: the table mutation happens under the
        lock, so concurrent claims of one unit serialize and the losers
        see the winner's live lease.  An expired lease is journaled as an
        ``expire`` and re-granted with ``reclaimed=True``; a re-claim by
        the *current holder* (a retry after a lost reply) idempotently
        re-grants the same token.
        """
        with self._lock:
            self._validate_unit(request.unit)
            if request.unit in self._results:
                return ClaimReply(granted=False, completed=True)
            now = time.monotonic()
            entry = self._leases.get(request.unit)
            reclaimed = False
            if entry is not None:
                if entry.worker == request.worker:
                    entry.heartbeat = now
                    return ClaimReply(
                        granted=True,
                        token=entry.token,
                        ttl=entry.ttl,
                        reclaimed=entry.reclaimed,
                    )
                if now - entry.heartbeat <= entry.ttl:
                    return ClaimReply(granted=False)
                self._journal(
                    {
                        "event": "expire",
                        "unit": request.unit,
                        "worker": entry.worker,
                        "token": entry.token,
                    }
                )
                del self._leases[request.unit]
                reclaimed = True
                logger.warning(
                    "expired stale lease on unit %r (worker %s silent past its "
                    "%.0fs ttl); re-granting to %s",
                    request.unit,
                    entry.worker,
                    entry.ttl,
                    request.worker,
                )
            token = secrets.token_hex(8)
            self._journal(
                {
                    "event": "claim",
                    "unit": request.unit,
                    "worker": request.worker,
                    "token": token,
                    "ttl": self.ttl,
                    "reclaimed": reclaimed,
                }
            )
            self._leases[request.unit] = _LeaseEntry(
                worker=request.worker,
                token=token,
                ttl=self.ttl,
                reclaimed=reclaimed,
                heartbeat=now,
            )
            return ClaimReply(granted=True, token=token, ttl=self.ttl, reclaimed=reclaimed)

    def renew(self, request: LeaseRequest) -> AckReply:
        """Refresh a lease's heartbeat; stale tokens are rejected.

        Renewals are *not* journaled — after a restart every surviving
        lease's heartbeat resets to the restart instant anyway, so the
        per-beat write would buy nothing.
        """
        with self._lock:
            entry = self._leases.get(request.unit)
            if entry is None or entry.token != request.token:
                return AckReply(ok=False, stale=True)
            entry.heartbeat = time.monotonic()
            return AckReply(ok=True)

    def release(self, request: LeaseRequest) -> AckReply:
        """Drop a lease — only for its current token.

        Releasing an already-gone lease acknowledges idempotently (the
        retry-after-lost-reply case); releasing with a superseded token
        is rejected so a stalled worker cannot unlink the new holder's
        claim.
        """
        with self._lock:
            entry = self._leases.get(request.unit)
            if entry is None:
                return AckReply(ok=True)
            if entry.token != request.token:
                return AckReply(ok=False, stale=True)
            self._journal(
                {
                    "event": "release",
                    "unit": request.unit,
                    "worker": request.worker,
                    "token": request.token,
                }
            )
            del self._leases[request.unit]
            return AckReply(ok=True)

    def record(self, request: RecordRequest) -> AckReply:
        """Durably record one unit's result, exactly once.

        The shard append (and journal line) happen before the
        acknowledgement, and the worker releases only after being
        acknowledged — record-before-release end to end.  A unit already
        recorded acknowledges as a duplicate without writing (first
        writer wins).  A *stale* token does not block recording as long
        as the unit is unrecorded: like the filesystem protocol, a robbed
        worker that finishes first contributes its (bit-identical) result
        rather than wasting it — and the superseded holder's lease is
        dropped so the unit cannot be claimed again.
        """
        with self._lock:
            self._validate_unit(request.unit)
            if request.unit in self._results:
                self._duplicates += 1
                logger.warning(
                    "duplicate record for unit %r from worker %s dropped "
                    "(first writer wins)",
                    request.unit,
                    request.worker,
                )
                return AckReply(ok=True, duplicate=True)
            entry = self._leases.get(request.unit)
            stale = entry is None or entry.token != request.token
            if stale:
                logger.warning(
                    "recording unit %r from worker %s despite a stale lease "
                    "token (its lease was reclaimed while it ran)",
                    request.unit,
                    request.worker,
                )
            shard_name = self.checkpoint.shard_path(request.worker).name
            self.checkpoint.record(request.unit, request.result, shard=request.worker)
            self._journal(
                {"event": "record", "unit": request.unit, "worker": request.worker}
            )
            self._results[request.unit] = request.result
            self._shard_counts[shard_name] = self._shard_counts.get(shard_name, 0) + 1
            self._leases.pop(request.unit, None)
            return AckReply(ok=True)

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def completed_keys(self) -> list[str]:
        with self._lock:
            return sorted(self._results)

    def results(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._results)

    @property
    def complete(self) -> bool:
        with self._lock:
            return self.total_units is not None and len(self._results) >= self.total_units

    def status_payload(self) -> dict:
        """A point-in-time snapshot in the shared status schema — the
        same shape :meth:`repro.runtime.distributed.RunDirStatus.
        to_payload` produces for filesystem run directories."""
        with self._lock:
            now = time.monotonic()
            active: list[dict] = []
            stale: list[dict] = []
            for unit in sorted(self._leases):
                entry = self._leases[unit]
                item = {
                    "unit": unit,
                    "worker": entry.worker,
                    "heartbeat_age": max(round(now - entry.heartbeat, 3), 0.0),
                    "ttl": entry.ttl,
                }
                (active if now - entry.heartbeat <= entry.ttl else stale).append(item)
            kind = self.manifest.get("kind")
            spec = self.manifest.get("spec")
            name = spec.get("name") if isinstance(spec, dict) else None
            completed = len(self._results)
            return {
                "schema": STATUS_SCHEMA_VERSION,
                "backend": "coordinator",
                "source": str(self.run_dir),
                "kind": kind if isinstance(kind, str) else None,
                "name": name if isinstance(name, str) else None,
                "complete": self.total_units is not None and completed >= self.total_units,
                "total_units": self.total_units,
                "completed_units": completed,
                "shard_counts": dict(sorted(self._shard_counts.items())),
                "duplicate_records": self._duplicates,
                "active_leases": active,
                "stale_leases": stale,
                "torn_leases": 0,
                "torn_live": 0,
            }


# ---------------------------------------------------------------------- #
# The HTTP face
# ---------------------------------------------------------------------- #
class _Handler(BaseHTTPRequestHandler):
    """Routes the wire protocol onto the server's :class:`Coordinator`."""

    protocol_version = "HTTP/1.1"
    server: "CoordinatorHTTPServer"

    # Quiet the default per-request stderr lines; debug logging keeps them.
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, payload: Any, code: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        coordinator = self.server.coordinator
        if self.path == "/status":
            self._send_json(coordinator.status_payload())
        elif self.path == "/completed":
            self._send_json({"keys": coordinator.completed_keys()})
        elif self.path == "/results":
            self._send_json({"results": coordinator.results()})
        elif self.path == "/manifest":
            self._send_json(coordinator.manifest)
        elif self.path == "/healthz":
            self._send_json({"ok": True})
        else:
            self._send_json({"error": f"unknown endpoint {self.path}"}, code=404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        coordinator = self.server.coordinator
        operations = {
            "/claim": (ClaimRequest, coordinator.claim),
            "/renew": (LeaseRequest, coordinator.renew),
            "/release": (LeaseRequest, coordinator.release),
            "/record": (RecordRequest, coordinator.record),
        }
        operation = operations.get(self.path)
        if operation is None:
            self._send_json({"error": f"unknown endpoint {self.path}"}, code=404)
            return
        parse, apply = operation
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length)) if length else None
            request = parse.from_dict(payload)
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json({"error": f"malformed request: {exc}"}, code=400)
            return
        try:
            reply = apply(request)
        except UnknownUnitError as exc:
            self._send_json({"error": str(exc)}, code=400)
            return
        except Exception as exc:  # noqa: BLE001 - a 500 must carry the cause
            logger.exception("coordinator operation %s failed", self.path)
            self._send_json({"error": f"internal error: {exc}"}, code=500)
            return
        self._send_json(reply.to_dict())


class CoordinatorHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`Coordinator`.

    While alive, the server maintains an advisory lease file
    (:data:`ADVISORY_LEASE_UNIT`) in the run directory so everything
    that respects filesystem leases — ``runs gc``, ``sweep status``,
    fresh-initialization refusal — sees the directory as actively
    worked, even though coordinator workers themselves never touch it.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], coordinator: Coordinator) -> None:
        super().__init__(address, _Handler)
        self.coordinator = coordinator
        self._advisory_leases = LeaseDir(coordinator.run_dir, ttl=coordinator.ttl)
        self._advisory_stop = threading.Event()
        self._advisory_thread: threading.Thread | None = None
        self._advisory_lease = None
        self._hold_advisory_lease()

    def _hold_advisory_lease(self) -> None:
        # A SIGKILLed predecessor's stale advisory lease must not block a
        # restart for a full TTL; exactly one coordinator serves a run
        # directory at a time (the port is the real mutex on one host).
        with contextlib.suppress(OSError):
            os.unlink(self._advisory_leases.lease_path(ADVISORY_LEASE_UNIT))
        lease = self._advisory_leases.claim(
            ADVISORY_LEASE_UNIT, f"coordinator-{os.getpid()}"
        )
        if lease is None:
            logger.warning(
                "could not claim the advisory coordinator lease in %s; "
                "`runs gc` may not see this coordinator as live",
                self.coordinator.run_dir,
            )
            return
        self._advisory_lease = lease
        interval = max(self.coordinator.ttl / 4.0, 0.1)

        def _beat() -> None:
            current = lease
            while not self._advisory_stop.wait(interval):
                try:
                    renewed = self._advisory_leases.renew(current)
                except OSError:
                    continue  # transient fs hiccup; retry next beat
                if renewed is not None:
                    current = renewed

        thread = threading.Thread(
            target=_beat, daemon=True, name="coordinator-advisory-lease"
        )
        thread.start()
        self._advisory_thread = thread

    def server_close(self) -> None:
        self._advisory_stop.set()
        if self._advisory_thread is not None:
            self._advisory_thread.join(timeout=5)
        if self._advisory_lease is not None:
            with contextlib.suppress(OSError):
                self._advisory_leases.release(self._advisory_lease)
            self._advisory_lease = None
        super().server_close()

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def serve_coordinator(
    run_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ttl: float = DEFAULT_LEASE_TTL,
    unit_keys: list[str] | None = None,
) -> CoordinatorHTTPServer:
    """Bind a coordinator server for ``run_dir`` (not yet serving).

    Returns the bound server; call ``serve_forever()`` (optionally from a
    thread) to start handling requests and ``shutdown()``/
    ``server_close()`` to stop.  ``port=0`` binds an ephemeral port —
    read the actual one off ``server.url``.
    """
    coordinator = Coordinator(run_dir, ttl=ttl, unit_keys=unit_keys)
    return CoordinatorHTTPServer((host, port), coordinator)


@contextlib.contextmanager
def running_coordinator(
    run_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ttl: float = DEFAULT_LEASE_TTL,
    unit_keys: list[str] | None = None,
):
    """Context manager: a coordinator serving on a background thread.

    Mostly for tests and in-process benchmarks; the CLI serves in the
    foreground via :func:`serve_coordinator`.
    """
    server = serve_coordinator(run_dir, host=host, port=port, ttl=ttl, unit_keys=unit_keys)
    thread = threading.Thread(target=server.serve_forever, daemon=True, name="coordinator")
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
