"""Work units: the schedulable atom of the experiment runtime.

A :class:`WorkUnit` is one independently executable slice of an
experiment — one PISA annealing restart, one sampled family instance,
one benchmark cell.  Units carry

* a **key**: a stable, human-readable identifier that is unique within a
  run (``"HEFT|CPoP|r2"``).  Keys name checkpoint records, so a resumed
  run can skip exactly the units that already completed.
* a **payload**: an arbitrary picklable spec the worker function
  interprets (for PISA units: the configured :class:`~repro.pisa.pisa.PISA`
  search object plus the restart index).
* an **rng**: a :class:`numpy.random.Generator` spawned deterministically
  from the run's root seed (``np.random.SeedSequence.spawn`` semantics via
  :func:`repro.utils.rng.spawn`).  Because every unit owns its own stream,
  results are identical whether units run serially, in any parallel
  interleaving, or across an interrupt/resume boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["WorkUnit"]


@dataclass(frozen=True)
class WorkUnit:
    """One independently executable, independently seeded slice of a run."""

    key: str
    payload: Any = None
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("work-unit key must be a non-empty string")
