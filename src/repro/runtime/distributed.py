"""Filesystem-coordinated multi-worker execution over a shared run directory.

Any number of worker processes — on any hosts that mount the same run
directory — can drain one sweep cooperatively.  Coordination is pure
filesystem protocol; there is no coordinator process:

``leases/<unit>.json``
    A worker *claims* a unit by creating its lease file with ``O_EXCL``
    (exactly one creator wins, atomically, on POSIX filesystems and on
    NFSv3+).  The lease holds the worker id, acquisition time, heartbeat
    timestamp, and TTL.  While executing, a daemon thread renews the
    heartbeat.  Staleness is judged **observer-locally**: a contender
    declares a lease dead only after watching its heartbeat stay
    *unchanged* for the lease's full TTL on the contender's own monotonic
    clock — no cross-host clock synchronization is required, because
    timestamps are only ever compared for *change*, never across hosts.
    A stale lease is *reclaimed* — stolen via an atomic rename (again,
    exactly one thief wins) — so a crashed host's units are re-executed.
``units-<worker>.jsonl``
    Completed results append to a per-worker shard (see
    :mod:`repro.runtime.checkpoint`); one writer per file means
    concurrent appends never interleave.  The merged view dedupes on
    unit key, so the rare "presumed-dead worker wakes up and records a
    unit someone already re-executed" case is benign: both records are
    bit-identical (units own deterministic RNG streams) and the first
    one wins.

The drain loop (:func:`drain_units`) claims, executes, records, and
releases until every unit of the run is recorded by *someone*, sleeping
``poll_interval`` between passes when all remaining units are leased by
live peers.  Liveness requires only that clocks advance at roughly the
same rate across hosts (TTLs compare durations, not wall-clock
instants).

Fault injection (used by ``tests/test_distributed.py``): setting
``REPRO_RUNTIME_UNIT_DELAY`` to a float number of seconds makes every
worker sleep that long between claiming a unit and executing it, which
gives a test harness a deterministic window to ``SIGKILL`` a worker
mid-unit.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import secrets
import socket
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.runtime.checkpoint import (
    RunCheckpoint,
    iter_result_records,
    result_file_paths,
    safe_filename,
)
from repro.runtime.units import WorkUnit

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_POLL_INTERVAL",
    "LEASES_DIR",
    "STATUS_SCHEMA_VERSION",
    "Lease",
    "LeaseDir",
    "lease_seems_live",
    "WorkerStats",
    "RunDirStatus",
    "worker_identity",
    "drain_units",
    "run_units_distributed",
    "run_units_coordinator",
    "inspect_run_dir",
    "render_status_payload",
]

logger = logging.getLogger(__name__)

#: Seconds without a heartbeat after which a lease is presumed dead.
DEFAULT_LEASE_TTL = 120.0
#: Seconds between drain-loop passes while waiting on other workers.
DEFAULT_POLL_INTERVAL = 0.5
#: Lease directory name inside a run directory.
LEASES_DIR = "leases"
#: Version tag of the machine-readable status payload schema
#: (``RunDirStatus.to_payload`` / coordinator ``GET /status`` /
#: ``repro sweep status --json``).
STATUS_SCHEMA_VERSION = 1

#: Fault-injection hook: sleep this many seconds between claim and
#: execution (see module docstring).
_UNIT_DELAY_ENV = "REPRO_RUNTIME_UNIT_DELAY"


def lease_seems_live(lease: "Lease | None", path: Path, now: float) -> bool:
    """Conservative, stateless liveness guess shared by every *advisory*
    consumer — ``sweep status``, lease-aware ``runs gc``, and end-of-run
    lease cleanup — so their judgements cannot drift apart.

    A lease seems live if either its embedded heartbeat or its file mtime
    is younger than its TTL.  Using both errs toward "live" under clock
    skew (mtimes on a shared filesystem come from one server clock), which
    is the safe direction for anything that might delete state.  The claim
    protocol itself never uses this: it relies on :class:`LeaseDir`'s
    observer-local unchanged-for-TTL rule.
    """
    ttl = lease.ttl if lease is not None else DEFAULT_LEASE_TTL
    if lease is not None and now - lease.heartbeat <= ttl:
        return True
    try:
        mtime = path.stat().st_mtime
    except OSError:
        return False  # vanished: certainly not holding anything
    return now - mtime <= ttl


#: Per-process random identity suffix, chosen lazily at first use (so a
#: forked child that first calls :func:`worker_identity` after the fork
#: still shares the parent's suffix — its pid already distinguishes it).
_identity_suffix: str | None = None


def worker_identity() -> str:
    """This process's worker id: ``<host>-<pid>-<random32>``.

    Uniqueness matters because the worker id names the result shard and
    leases; two workers sharing an id would interleave appends in one
    file.  Hostname + pid alone collide across container fleets (every
    container is ``host`` pid 42) and across pid reuse on one machine, so
    a random 32-bit suffix is appended — chosen once, at the first call,
    so every call in one process names the *same* worker.  Leases and
    shards treat the id as opaque, so the format can evolve freely.
    """
    global _identity_suffix
    if _identity_suffix is None:
        _identity_suffix = secrets.token_hex(4)
    host = socket.gethostname().split(".")[0] or "host"
    return f"{host}-{os.getpid()}-{_identity_suffix}"


# ---------------------------------------------------------------------- #
# Leases
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Lease:
    """One worker's claim on one work unit."""

    unit: str
    worker: str
    acquired_at: float
    heartbeat: float
    ttl: float
    #: Whether this claim reclaimed a dead worker's stale lease (not part
    #: of the serialized format).
    reclaimed: bool = field(default=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "unit": self.unit,
            "worker": self.worker,
            "acquired_at": self.acquired_at,
            "heartbeat": self.heartbeat,
            "ttl": self.ttl,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "Lease":
        """Parse a lease payload; raises :class:`ValueError` on anything
        a torn write or foreign file could have left behind."""
        if not isinstance(data, dict):
            raise ValueError(f"lease payload must be an object, got {type(data).__name__}")
        try:
            unit = data["unit"]
            worker = data["worker"]
            acquired_at = float(data["acquired_at"])
            heartbeat = float(data["heartbeat"])
            ttl = float(data["ttl"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed lease payload: {exc}") from None
        if not isinstance(unit, str) or not isinstance(worker, str):
            raise ValueError("lease unit/worker must be strings")
        return cls(
            unit=unit, worker=worker, acquired_at=acquired_at, heartbeat=heartbeat, ttl=ttl
        )


class LeaseDir:
    """The ``leases/`` directory of one run: claim, renew, release.

    All mutations are single atomic filesystem operations (``O_EXCL``
    create, ``rename``, ``replace``, ``unlink``), so any number of
    workers — threads, processes, or hosts — can race safely.

    Staleness is **observer-local**: each ``LeaseDir`` instance remembers
    when it first observed a lease's current heartbeat value (on its own
    monotonic clock) and presumes the holder dead only after the value
    has stayed unchanged for the lease's declared TTL.  Host clocks are
    never compared, so arbitrary wall-clock skew cannot make a live
    lease look dead (or vice versa) — at the cost of up to one extra TTL
    of reclaim latency after a crash is first noticed.
    """

    def __init__(self, run_dir: str | Path, ttl: float = DEFAULT_LEASE_TTL) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.path = Path(run_dir) / LEASES_DIR
        self.ttl = float(ttl)
        #: lease file name -> (last observed heartbeat value or None for a
        #: torn file, monotonic instant that value was first observed, the
        #: TTL the holder declared on that sighting)
        self._observed: dict[str, tuple[float | None, float, float]] = {}

    def lease_path(self, unit_key: str) -> Path:
        return self.path / f"{safe_filename(unit_key)}.json"

    # ------------------------------------------------------------------ #
    def claim(self, unit_key: str, worker: str) -> Lease | None:
        """Try to claim ``unit_key`` for ``worker``.

        Returns the new lease, or ``None`` if another worker holds a
        lease not yet presumed dead (or won the race for a stale one).
        Stale leases — heartbeat unchanged for the TTL *the holder
        declared*, by this observer's clock — are stolen first via an
        atomic rename so exactly one contender inherits the claim.
        """
        self.path.mkdir(parents=True, exist_ok=True)
        path = self.lease_path(unit_key)
        now = time.time()
        reclaimed = False
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            # A first-try create can still be a takeover: a sibling
            # contender may have torn down the stale lease (rename to
            # tombstone in ``_expire``) between our last probe and this
            # create.  If our own watch on this unit had already run past
            # the departed holder's declared TTL, the holder was presumed
            # dead by the time the path cleared — flag the claim reclaimed
            # so the handover is not invisible in status/logs.
            seen = self._observed.get(path.name)
            if seen is not None and time.monotonic() - seen[1] > seen[2]:
                reclaimed = True
        except FileExistsError:
            outcome = self._expire(path)
            if outcome is None:
                return None
            # "vanished" means the holder released normally between our
            # O_EXCL failure and now — an ordinary race, not a reclaim.
            reclaimed = outcome == "stolen"
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                return None  # lost the re-create race after the steal
        self._observed.pop(path.name, None)
        lease = Lease(
            unit=unit_key,
            worker=worker,
            acquired_at=now,
            heartbeat=now,
            ttl=self.ttl,
            reclaimed=reclaimed,
        )
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(lease.to_dict()) + "\n")
            fh.flush()
        if reclaimed:
            logger.warning(
                "reclaimed stale lease on unit %r for worker %s", unit_key, worker
            )
        return lease

    def _expire(self, path: Path) -> str | None:
        """Clear the way to re-claim ``path`` if its holder is gone.

        Returns ``"stolen"`` (we won the takeover of a stale lease),
        ``"vanished"`` (the holder released it normally in the meantime),
        or ``None`` (a holder not yet presumed dead still owns it).
        """
        existing = self.load(path)
        # Torn files (a writer died mid-write) have no heartbeat; watch
        # them under the None marker with our own TTL.
        marker = existing.heartbeat if existing is not None else None
        ttl = existing.ttl if existing is not None else self.ttl
        if existing is None and not path.exists():
            return "vanished"  # released; O_EXCL settles the rest
        mono = time.monotonic()
        seen = self._observed.get(path.name)
        if seen is None or seen[0] != marker:
            # First sighting of this heartbeat value: start (or restart)
            # the unchanged-for-TTL watch.  A renewing holder resets it
            # every beat, so live leases are never presumed dead.
            self._observed[path.name] = (marker, mono, ttl)
            return None
        if mono - seen[1] <= ttl:
            return None
        tomb = path.with_name(f"{path.name}.stale.{os.getpid()}.{secrets.token_hex(2)}")
        try:
            os.rename(path, tomb)
        except OSError:
            return None  # another contender stole it first
        self._observed.pop(path.name, None)
        with contextlib.suppress(OSError):
            os.unlink(tomb)
        return "stolen"

    def renew(self, lease: Lease) -> Lease | None:
        """Refresh ``lease``'s heartbeat; ``None`` if ownership was lost.

        A worker stalled past its TTL may find its lease stolen; renewing
        would clobber the thief's claim, so the renewal is refused and the
        caller should stop heartbeating (finishing the unit stays safe —
        the duplicate record is deduplicated on merge).  A *vanished*
        lease refuses renewal too: recreating it would let a straggler
        heartbeat — e.g. one blocked in a slow filesystem call while the
        unit finished and released — resurrect a phantom "live" lease on
        a completed unit, blocking gc for a full TTL.
        """
        path = self.lease_path(lease.unit)
        current = self.load(path)
        if current is None or current.worker != lease.worker:
            return None
        updated = replace(lease, heartbeat=time.time())
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}.{secrets.token_hex(2)}")
        tmp.write_text(json.dumps(updated.to_dict()) + "\n")
        os.replace(tmp, path)
        return updated

    def release(self, lease: Lease) -> None:
        """Remove ``lease`` — only if it is still ours.

        A stalled worker whose lease was stolen must not unlink the
        thief's live lease (e.g. from the failure-path release in the
        drain loop): that would hide the thief from gc/status and let a
        third worker start the unit concurrently.
        """
        path = self.lease_path(lease.unit)
        current = self.load(path)
        if current is not None and current.worker != lease.worker:
            return  # stolen: the thief's lease is not ours to remove
        with contextlib.suppress(OSError):
            os.unlink(path)

    def load(self, path: Path) -> Lease | None:
        """The lease at ``path``, or ``None`` if torn/unreadable/vanished."""
        try:
            return Lease.from_dict(json.loads(path.read_text()))
        except (OSError, ValueError, json.JSONDecodeError):
            return None

    def leases(self) -> list[tuple[Path, Lease | None]]:
        """Every lease file currently present (``None`` payload = torn)."""
        if not self.path.is_dir():
            return []
        return [(p, self.load(p)) for p in sorted(self.path.glob("*.json"))]

    def cleanup(self, completed_keys: set[str], now: float | None = None) -> int:
        """Remove leftover expired leases of already-completed units.

        A worker killed between recording a result and releasing its lease
        leaves a lease nobody will ever claim again (the unit is done);
        this sweeps such husks so ``gc``/``status`` don't report phantom
        work.  Seemingly-live leases are never touched.
        """
        now = time.time() if now is None else now
        removed = 0
        for path, lease in self.leases():
            if lease is not None and lease.unit not in completed_keys:
                continue
            if lease_seems_live(lease, path, now):
                continue
            with contextlib.suppress(OSError):
                os.unlink(path)
                removed += 1
        return removed


@contextlib.contextmanager
def _renewing(backend, lease, interval: float, renew=None):
    """Renew ``lease`` on ``backend`` every ``interval`` seconds while the
    body runs.  ``backend`` is any :class:`~repro.runtime.backends.
    WorkBackend`; transient errors (filesystem hiccups, a coordinator
    restarting) are retried on the next beat.  ``renew`` overrides the
    renewal callable (``backend.renew_batch`` for batch leases, whose
    one round trip covers the batch's whole unfinished remainder)."""
    stop = threading.Event()
    renew_fn = backend.renew if renew is None else renew

    def _beat() -> None:
        current = lease
        while not stop.wait(interval):
            try:
                renewed = renew_fn(current)
            except OSError:
                continue  # transient fs/network hiccup; retry next beat
            except Exception as exc:  # noqa: BLE001 - the beat must survive
                # e.g. a protocol error from a version-skewed coordinator
                # or an intermediary returning garbage: losing the thread
                # here would silently stop renewals and hand the unit to a
                # peer; keep beating — if the condition persists the lease
                # expires anyway, which is the same worst case, loudly.
                logger.warning(
                    "heartbeat renewal for unit %r failed (%s); retrying next beat",
                    lease.unit,
                    exc,
                )
                continue
            if renewed is None:
                logger.warning(
                    "lease on unit %r was reclaimed from worker %s while it "
                    "was still running (stalled past its TTL?); finishing "
                    "anyway — the duplicate result is deduplicated on merge",
                    lease.unit,
                    lease.worker,
                )
                return
            current = renewed

    thread = threading.Thread(target=_beat, daemon=True, name=f"lease-renew-{lease.unit}")
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join(timeout=max(interval, 1.0) + 5.0)


# ---------------------------------------------------------------------- #
# The drain loop
# ---------------------------------------------------------------------- #
@dataclass
class WorkerStats:
    """What one worker did while draining a run directory."""

    worker_id: str
    executed: int = 0
    reclaimed: int = 0  # stale leases stolen from dead workers
    skipped: int = 0  # claims that turned out to be already completed
    executed_keys: set[str] = field(default_factory=set)


class _CompletedTracker:
    """Incremental merged view of the completed-unit keys of a run.

    Re-reads only the bytes appended since the last refresh (per result
    file), consuming up to the last newline so a peer's in-flight torn
    tail is simply picked up next time.
    """

    def __init__(self, checkpoint: RunCheckpoint) -> None:
        self._checkpoint = checkpoint
        self._offsets: dict[Path, int] = {}
        self.keys: set[str] = set()

    def refresh(self) -> set[str]:
        for path in self._checkpoint.result_paths():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            offset = self._offsets.get(path, 0)
            if size <= offset:
                continue
            try:
                with path.open("rb") as fh:
                    fh.seek(offset)
                    blob = fh.read()
            except OSError:
                continue
            end = blob.rfind(b"\n")
            if end < 0:
                continue
            self._offsets[path] = offset + end + 1
            for raw in blob[: end + 1].splitlines():
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue  # torn/garbage line; completed() logs it
                if isinstance(record, dict) and "key" in record and "result" in record:
                    self.keys.add(record["key"])
        return self.keys


def drain_units(
    units: Iterable[WorkUnit],
    worker: Callable[[WorkUnit], Any],
    checkpoint: RunCheckpoint | None = None,
    *,
    backend: Any | None = None,
    worker_id: str | None = None,
    lease_ttl: float | None = None,
    heartbeat_interval: float | None = None,
    poll_interval: float | None = None,
    wait: bool = True,
    on_unit: Callable[[str], None] | None = None,
    claim_batch: int = 1,
    telemetry_dir: str | Path | None = None,
) -> WorkerStats:
    """Drain ``units`` through a work backend as one worker.

    The loop is backend-agnostic: claim a unit, execute it with
    ``worker``, record the result, release the claim — against any
    :class:`~repro.runtime.backends.WorkBackend`.  The default backend is
    the filesystem protocol over ``checkpoint``'s run directory (lease
    files + per-worker shards); pass ``backend=`` (e.g. an
    :class:`~repro.runtime.backends.HttpWorkBackend`) to coordinate
    through an HTTP coordinator instead.  Returns when every unit of the
    run is completed (by this worker or any peer); with ``wait=False``,
    returns as soon as nothing is claimable instead of waiting for peers'
    in-flight units.

    Parameters
    ----------
    checkpoint:
        Run directory for the default filesystem backend.  Exactly one of
        ``checkpoint``/``backend`` must be given.
    backend:
        An explicit :class:`WorkBackend` to drain through.
    worker_id:
        Shard/lease identity; default :func:`worker_identity`.  Must be
        unique among concurrently running workers.
    lease_ttl:
        Filesystem backend only: seconds without a heartbeat before this
        worker's leases may be reclaimed by peers (default
        :data:`DEFAULT_LEASE_TTL`).  A coordinator backend's TTL is owned
        by the coordinator, so passing it here is rejected.
    heartbeat_interval:
        Seconds between heartbeat renewals (default: a quarter of each
        lease's TTL).
    poll_interval:
        Sleep between passes when all pending units are leased by live
        peers (default :data:`DEFAULT_POLL_INTERVAL`).
    on_unit:
        Callback invoked with each unit key this worker finished.
    claim_batch:
        Units to lease per claim request (default 1: the per-unit
        protocol, byte-for-byte the pre-batching behavior).  Larger
        batches amortize claim/release round trips — the big win on an
        HTTP backend — while results are still recorded (and members
        released) one by one, so a worker that dies mid-batch leaks
        only the *unfinished* remainder to TTL expiry.
    telemetry_dir:
        Where this worker's ``telemetry-<worker>.jsonl`` trace shard
        goes.  Defaults to the run directory for the filesystem backend
        and to ``$REPRO_TELEMETRY_DIR`` (if set) otherwise; ``None``
        with no default means no trace shard.  Telemetry is inert — it
        records wall-clock observations about completed units and never
        touches RNG streams or results — and is disabled entirely by
        ``REPRO_TELEMETRY=0``.
    """
    from repro.runtime.backends import FilesystemWorkBackend

    units = list(units)
    keys = [u.key for u in units]
    if len(set(keys)) != len(keys):
        raise ValueError("work-unit keys must be unique within a run")
    if (checkpoint is None) == (backend is None):
        raise ValueError("exactly one of checkpoint/backend is required")
    if backend is None:
        ttl = DEFAULT_LEASE_TTL if lease_ttl is None else float(lease_ttl)
        backend = FilesystemWorkBackend(checkpoint, ttl=ttl)
    elif lease_ttl is not None:
        raise ValueError(
            "lease_ttl cannot be combined with an explicit backend: the "
            "backend (its coordinator, for HTTP) owns the lease TTL"
        )
    wid = worker_id if worker_id is not None else worker_identity()
    beat_override = None if heartbeat_interval is None else float(heartbeat_interval)
    if beat_override is not None and beat_override <= 0:
        raise ValueError(f"heartbeat interval must be positive, got {beat_override}")
    known_ttl = getattr(backend, "ttl", None)

    def _beat_for(lease) -> float:
        beat = lease.ttl / 4.0 if beat_override is None else beat_override
        if beat >= lease.ttl:
            # A heartbeat slower than the TTL makes every live lease look
            # stale to peers: they would steal mid-unit and systematically
            # re-execute every long unit.
            raise ValueError(
                f"heartbeat interval ({beat}) must be smaller than the lease "
                f"ttl ({lease.ttl}); leave it unset for the ttl/4 default"
            )
        return beat

    if beat_override is not None and known_ttl is not None and beat_override >= known_ttl:
        # Fail before any claim when the backend's TTL is known up front
        # (the filesystem backend); a coordinator backend's TTL arrives
        # with each grant, so there the per-lease check catches it.
        raise ValueError(
            f"heartbeat interval ({beat_override}) must be smaller than the "
            f"lease ttl ({known_ttl}); leave it unset for the ttl/4 default"
        )

    poll = DEFAULT_POLL_INTERVAL if poll_interval is None else float(poll_interval)
    delay = float(os.environ.get(_UNIT_DELAY_ENV, 0) or 0)
    batch_size = int(claim_batch)
    if batch_size < 1:
        raise ValueError(f"claim_batch must be >= 1, got {claim_batch}")

    stats = WorkerStats(worker_id=wid)
    by_key = {u.key: u for u in units}

    from repro.observability.metrics import global_registry
    from repro.observability.trace import TelemetryWriter, profile_requested
    from repro.utils import phases

    if telemetry_dir is None:
        if checkpoint is not None:
            telemetry_dir = checkpoint.run_dir
        else:
            telemetry_dir = os.environ.get("REPRO_TELEMETRY_DIR") or None
    telemetry = TelemetryWriter.open(telemetry_dir, wid)
    if profile_requested():
        phases.enable()
    registry = global_registry()
    # Children resolved once: steady-state recording is one lock + add.
    m_executed = registry.counter(
        "repro_worker_units_total", "Units this process executed.", ("worker",)
    ).labels(wid)
    m_reclaimed = registry.counter(
        "repro_worker_reclaims_total", "Stale leases this process stole.", ("worker",)
    ).labels(wid)
    m_skipped = registry.counter(
        "repro_worker_skips_total",
        "Claims that turned out to be already completed.",
        ("worker",),
    ).labels(wid)

    def _execute(key: str) -> Any:
        if delay > 0:
            time.sleep(delay)  # fault-injection window (see module docstring)
        return worker(by_key[key])

    def _finished(key: str) -> None:
        stats.executed += 1
        stats.executed_keys.add(key)
        m_executed.inc()
        if on_unit is not None:
            on_unit(key)

    def _close_telemetry() -> None:
        if telemetry is None:
            return
        # Serialize-and-reset: this worker's phase accumulators travel in
        # its telemetry shard (which is what lets --profile work at any
        # --jobs and on remote backends), and the reset keeps the parent
        # process's in-memory snapshot from double-counting what it
        # already shipped.
        snap = phases.snapshot()
        if snap:
            telemetry.phases(snap)
            phases.reset()
        telemetry.event("drain_end", executed=stats.executed, reclaimed=stats.reclaimed)
        telemetry.close()

    if telemetry is not None:
        telemetry.event("drain_start", units=len(units))
    try:
        while True:
            done = backend.completed_keys()
            pending = [k for k in by_key if k not in done]
            if not pending:
                backend.cleanup(done)
                return stats
            progressed = False
            if batch_size > 1:
                for start in range(0, len(pending), batch_size):
                    chunk = pending[start : start + batch_size]
                    claim_t0 = time.perf_counter()
                    batch = backend.claim_batch(chunk, wid)
                    claim_s = time.perf_counter() - claim_t0
                    if batch is None:
                        continue
                    progressed = True
                    stats.reclaimed += len(batch.reclaimed_units)
                    m_reclaimed.inc(len(batch.reclaimed_units))
                    # One claim round trip covers the batch; spans amortize
                    # its cost evenly across the granted members.
                    claim_share = claim_s / max(len(batch.units), 1)
                    reclaimed_units = set(batch.reclaimed_units)
                    try:
                        with _renewing(
                            backend, batch, _beat_for(batch), renew=backend.renew_batch
                        ):
                            for key in list(batch.units):
                                # Same post-claim recheck as the per-unit path
                                # below, per member.
                                if backend.recheck_after_claim and key in backend.completed_keys():
                                    backend.release_unit(batch, key)
                                    stats.skipped += 1
                                    m_skipped.inc()
                                    continue
                                t0 = time.perf_counter()
                                result = _execute(key)
                                execute_s = time.perf_counter() - t0
                                # Record-and-release member by member: a crash
                                # from here on costs peers only the *unfinished*
                                # remainder after TTL expiry.
                                t0 = time.perf_counter()
                                backend.record_in_batch(batch, key, result)
                                record_s = time.perf_counter() - t0
                                _finished(key)
                                if telemetry is not None:
                                    telemetry.span(
                                        key,
                                        claim_s=claim_share,
                                        execute_s=execute_s,
                                        record_s=record_s,
                                        release_s=0.0,  # released with the batch
                                        reclaimed=key in reclaimed_units,
                                        batched=True,
                                    )
                    finally:
                        # Success path: every member was recorded and released,
                        # so this releases nothing.  Failure path: hands the
                        # unfinished remainder back to peers immediately.
                        backend.release_batch(batch)
            else:
                for key in pending:
                    claim_t0 = time.perf_counter()
                    lease = backend.claim(key, wid)
                    if lease is None:
                        continue
                    claim_s = time.perf_counter() - claim_t0
                    progressed = True
                    if lease.reclaimed:
                        stats.reclaimed += 1
                        m_reclaimed.inc()
                    # Results are recorded *before* leases are released, so a
                    # post-claim recheck sees everything any peer finished: a dead
                    # worker that recorded then crashed before releasing, or a live
                    # one that completed this unit after this pass listed it as
                    # pending.  Never execute a completed unit twice.  (A
                    # coordinator backend refuses the claim atomically instead, so
                    # the recheck round-trip is skipped there.)
                    if backend.recheck_after_claim and key in backend.completed_keys():
                        backend.release(lease)
                        stats.skipped += 1
                        m_skipped.inc()
                        continue
                    execute_s = record_s = release_s = 0.0
                    try:
                        t0 = time.perf_counter()
                        with _renewing(backend, lease, _beat_for(lease)):
                            result = _execute(key)
                        execute_s = time.perf_counter() - t0
                        t0 = time.perf_counter()
                        backend.record(lease, result)
                        record_s = time.perf_counter() - t0
                    finally:
                        # Success path: record-before-release (the correctness
                        # ordering).  Failure path: nothing was recorded, so
                        # releasing immediately lets peers re-claim the unit now
                        # instead of waiting out this worker's full TTL.
                        t0 = time.perf_counter()
                        backend.release(lease)
                        release_s = time.perf_counter() - t0
                    _finished(key)
                    if telemetry is not None:
                        telemetry.span(
                            key,
                            claim_s=claim_s,
                            execute_s=execute_s,
                            record_s=record_s,
                            release_s=release_s,
                            reclaimed=lease.reclaimed,
                        )
            if not progressed:
                if not wait:
                    return stats
                time.sleep(poll)
    finally:
        _close_telemetry()


# ---------------------------------------------------------------------- #
# Multi-process distributed execution (the `backend="distributed"` path)
# ---------------------------------------------------------------------- #
def _drain_child(
    checkpoint: RunCheckpoint,
    units: list[WorkUnit],
    worker: Callable[[WorkUnit], Any],
    lease_ttl: float | None,
    heartbeat_interval: float | None,
    poll_interval: float | None,
    claim_batch: int = 1,
) -> WorkerStats:
    """Module-level child entry (crosses process boundaries by pickle)."""
    return drain_units(
        units,
        worker,
        checkpoint,
        lease_ttl=lease_ttl,
        heartbeat_interval=heartbeat_interval,
        poll_interval=poll_interval,
        claim_batch=claim_batch,
    )


def run_units_distributed(
    units: Iterable[WorkUnit],
    worker: Callable[[WorkUnit], Any],
    checkpoint: RunCheckpoint,
    *,
    jobs: int = 1,
    worker_id: str | None = None,
    lease_ttl: float | None = None,
    heartbeat_interval: float | None = None,
    poll_interval: float | None = None,
    claim_batch: int = 1,
    on_result: Callable[[WorkUnit, Any, bool], None] | None = None,
) -> dict[str, Any]:
    """Execute ``units`` via the lease protocol and return ``{key: result}``.

    The calling process participates as one worker; ``jobs > 1`` adds
    ``jobs - 1`` sibling worker processes on this host.  Workers on
    *other* hosts join by pointing ``repro sweep work`` at the same run
    directory — this function simply keeps draining until the run is
    complete, however many peers help, then merges every shard.

    ``on_result`` follows :func:`repro.runtime.executor.run_units`
    semantics, invoked once per unit after the run completes (in unit
    order) with ``cached=True`` for units this process did not execute.
    """
    from repro.runtime.executor import _ensure_child_importable, _mp_context

    units = list(units)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    stats: WorkerStats
    if jobs > 1 and len(units) > 1:
        from concurrent.futures import ProcessPoolExecutor

        _ensure_child_importable()
        siblings = min(jobs, len(units)) - 1
        with ProcessPoolExecutor(max_workers=max(siblings, 1), mp_context=_mp_context()) as pool:
            futures = [
                pool.submit(
                    _drain_child,
                    checkpoint,
                    units,
                    worker,
                    lease_ttl,
                    heartbeat_interval,
                    poll_interval,
                    claim_batch,
                )
                for _ in range(siblings)
            ]
            stats = drain_units(
                units,
                worker,
                checkpoint,
                worker_id=worker_id,
                lease_ttl=lease_ttl,
                heartbeat_interval=heartbeat_interval,
                poll_interval=poll_interval,
                claim_batch=claim_batch,
            )
            for future in futures:
                future.result()  # surface child crashes
    else:
        stats = drain_units(
            units,
            worker,
            checkpoint,
            worker_id=worker_id,
            lease_ttl=lease_ttl,
            heartbeat_interval=heartbeat_interval,
            poll_interval=poll_interval,
            claim_batch=claim_batch,
        )

    merged = checkpoint.completed()
    missing = [u.key for u in units if u.key not in merged]
    if missing:
        raise RuntimeError(
            f"distributed run at {checkpoint.run_dir} ended with "
            f"{len(missing)} unit(s) unrecorded (first: {missing[0]!r}); "
            "a worker may have failed without surfacing its error"
        )
    results = {u.key: merged[u.key] for u in units}
    if on_result is not None:
        for unit in units:
            on_result(unit, results[unit.key], unit.key not in stats.executed_keys)
    return results


# ---------------------------------------------------------------------- #
# Coordinator-backed execution (the `backend="coordinator"` path)
# ---------------------------------------------------------------------- #
def _drain_coordinator_child(
    url: str,
    units: list[WorkUnit],
    worker: Callable[[WorkUnit], Any],
    encode: Callable[[Any], Any] | None,
    heartbeat_interval: float | None,
    poll_interval: float | None,
    retry_timeout: float | None,
    claim_batch: int = 1,
    telemetry_dir: str | None = None,
) -> WorkerStats:
    """Module-level child entry (crosses process boundaries by pickle)."""
    from repro.runtime.backends import HttpWorkBackend

    backend = HttpWorkBackend(url, encode=encode, retry_timeout=retry_timeout)
    return drain_units(
        units,
        worker,
        backend=backend,
        heartbeat_interval=heartbeat_interval,
        poll_interval=poll_interval,
        claim_batch=claim_batch,
        telemetry_dir=telemetry_dir,
    )


def run_units_coordinator(
    units: Iterable[WorkUnit],
    worker: Callable[[WorkUnit], Any],
    url: str,
    *,
    jobs: int = 1,
    worker_id: str | None = None,
    encode: Callable[[Any], Any] | None = None,
    decode: Callable[[Any], Any] | None = None,
    heartbeat_interval: float | None = None,
    poll_interval: float | None = None,
    retry_timeout: float | None = None,
    claim_batch: int = 1,
    on_result: Callable[[WorkUnit, Any, bool], None] | None = None,
    telemetry_dir: str | Path | None = None,
) -> dict[str, Any]:
    """Execute ``units`` through the HTTP coordinator at ``url``.

    The calling process participates as one worker; ``jobs > 1`` adds
    ``jobs - 1`` sibling worker processes on this host, and workers on
    other hosts join with ``repro sweep work --coordinator <url>``.  No
    shared filesystem is required: results are recorded to (and, at the
    end, fetched back from) the coordinator over the wire, so this
    process never touches the coordinator's run directory.

    ``encode``/``decode`` are the unit-result codecs (the same ones a
    :class:`~repro.runtime.checkpoint.RunCheckpoint` would hold);
    ``on_result`` follows :func:`repro.runtime.executor.run_units`
    semantics, invoked once per unit after the run completes.
    """
    from repro.runtime.backends import HttpWorkBackend
    from repro.runtime.executor import _ensure_child_importable, _mp_context

    units = list(units)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    backend = HttpWorkBackend(url, encode=encode, retry_timeout=retry_timeout)
    stats: WorkerStats
    if jobs > 1 and len(units) > 1:
        from concurrent.futures import ProcessPoolExecutor

        _ensure_child_importable()
        siblings = min(jobs, len(units)) - 1
        with ProcessPoolExecutor(max_workers=max(siblings, 1), mp_context=_mp_context()) as pool:
            futures = [
                pool.submit(
                    _drain_coordinator_child,
                    url,
                    units,
                    worker,
                    encode,
                    heartbeat_interval,
                    poll_interval,
                    retry_timeout,
                    claim_batch,
                    None if telemetry_dir is None else str(telemetry_dir),
                )
                for _ in range(siblings)
            ]
            stats = drain_units(
                units,
                worker,
                backend=backend,
                worker_id=worker_id,
                heartbeat_interval=heartbeat_interval,
                poll_interval=poll_interval,
                claim_batch=claim_batch,
                telemetry_dir=telemetry_dir,
            )
            for future in futures:
                future.result()  # surface child crashes
    else:
        stats = drain_units(
            units,
            worker,
            backend=backend,
            worker_id=worker_id,
            heartbeat_interval=heartbeat_interval,
            poll_interval=poll_interval,
            claim_batch=claim_batch,
            telemetry_dir=telemetry_dir,
        )

    raw = backend.results()
    missing = [u.key for u in units if u.key not in raw]
    if missing:
        raise RuntimeError(
            f"coordinator run at {url} ended with {len(missing)} unit(s) "
            f"unrecorded (first: {missing[0]!r}); a worker may have failed "
            "without surfacing its error"
        )
    decode = decode if decode is not None else (lambda value: value)
    results = {u.key: decode(raw[u.key]) for u in units}
    if on_result is not None:
        for unit in units:
            on_result(unit, results[unit.key], unit.key not in stats.executed_keys)
    return results


# ---------------------------------------------------------------------- #
# Introspection (`repro sweep status`, lease-aware gc)
# ---------------------------------------------------------------------- #
@dataclass
class RunDirStatus:
    """A point-in-time snapshot of a shared run directory's progress.

    This is *the* read-only inspection of a run directory: ``repro sweep
    status`` renders it and the lease-aware ``runs gc`` classifier is
    layered on it, so the two CLIs can never disagree about what a
    directory contains.
    """

    run_dir: Path
    kind: str | None
    name: str | None
    total_units: int | None
    completed_units: int
    shard_counts: dict[str, int]  # result file name -> distinct keys in it
    duplicate_records: int
    active_leases: list[Lease]
    stale_leases: list[Lease]
    torn_leases: int  # unparseable lease files (a writer died mid-write)
    torn_live: int  # of those, still fresh by the conservative rule

    @property
    def complete(self) -> bool:
        return self.total_units is not None and self.completed_units >= self.total_units

    @property
    def live_lease_count(self) -> int:
        """Leases that may belong to a live worker — fresh parseable ones
        plus fresh torn ones (their writer may still be mid-write)."""
        return len(self.active_leases) + self.torn_live

    def to_payload(self, now: float | None = None) -> dict:
        """This snapshot as the machine-readable status schema.

        One schema for every backend: ``repro sweep status --json``
        emits it for filesystem run directories, and the coordinator's
        ``GET /status`` returns the identical shape, so dashboards never
        care where a snapshot came from.  Heartbeats are reported as
        *ages* (seconds since last beat), never absolute timestamps —
        ages survive the trip between hosts with skewed clocks.
        """
        now = time.time() if now is None else now

        def lease_payload(lease: Lease) -> dict:
            return {
                "unit": lease.unit,
                "worker": lease.worker,
                "heartbeat_age": max(round(now - lease.heartbeat, 3), 0.0),
                "ttl": lease.ttl,
            }

        return {
            # "schema" is the legacy alias; dashboard consumers should key
            # off "schema_version" to detect payload drift.
            "schema": STATUS_SCHEMA_VERSION,
            "schema_version": STATUS_SCHEMA_VERSION,
            "backend": "filesystem",
            "source": str(self.run_dir),
            "kind": self.kind,
            "name": self.name,
            "complete": self.complete,
            "total_units": self.total_units,
            "completed_units": self.completed_units,
            "shard_counts": dict(sorted(self.shard_counts.items())),
            "duplicate_records": self.duplicate_records,
            "active_leases": [lease_payload(lease) for lease in self.active_leases],
            "stale_leases": [lease_payload(lease) for lease in self.stale_leases],
            "torn_leases": self.torn_leases,
            "torn_live": self.torn_live,
        }


def inspect_run_dir(run_dir: str | Path, now: float | None = None) -> RunDirStatus:
    """Inspect progress, shards, and leases of ``run_dir`` (read-only)."""
    run_dir = Path(run_dir)
    now = time.time() if now is None else now
    kind = name = None
    total = None
    try:
        manifest = json.loads((run_dir / RunCheckpoint.MANIFEST_NAME).read_text())
    except (OSError, json.JSONDecodeError):
        manifest = None
    if isinstance(manifest, dict):
        kind = manifest.get("kind") if isinstance(manifest.get("kind"), str) else None
        total = manifest.get("units") if isinstance(manifest.get("units"), int) else None
        spec = manifest.get("spec")
        if isinstance(spec, dict) and isinstance(spec.get("name"), str):
            name = spec["name"]

    seen: set[str] = set()
    shard_counts: dict[str, int] = {}
    duplicates = 0
    for path in result_file_paths(run_dir):
        in_file: set[str] = set()
        for record in iter_result_records(path, log=False):
            key = record["key"]
            if key in seen:
                duplicates += 1
            seen.add(key)
            in_file.add(key)
        shard_counts[path.name] = len(in_file)

    active: list[Lease] = []
    stale: list[Lease] = []
    torn = torn_live = 0
    for path, lease in LeaseDir(run_dir).leases():
        if lease is None:
            torn += 1
            if lease_seems_live(lease, path, now):
                torn_live += 1
        elif lease_seems_live(lease, path, now):
            active.append(lease)
        else:
            stale.append(lease)

    return RunDirStatus(
        run_dir=run_dir,
        kind=kind,
        name=name,
        total_units=total,
        completed_units=len(seen),
        shard_counts=shard_counts,
        duplicate_records=duplicates,
        active_leases=active,
        stale_leases=stale,
        torn_leases=torn,
        torn_live=torn_live,
    )


def render_status_payload(payload: dict) -> str:
    """Human-readable rendering of one status-schema payload.

    This is *the* ``repro sweep status`` output; because it consumes the
    shared payload schema (:meth:`RunDirStatus.to_payload` / the
    coordinator's ``GET /status``), the filesystem and coordinator views
    of one run render identically.
    """
    label = payload.get("name") or payload.get("kind") or "run"
    total = payload.get("total_units")
    total_text = "?" if total is None else total
    state = "complete" if payload.get("complete") else "incomplete"
    via = " (via coordinator)" if payload.get("backend") == "coordinator" else ""
    lines = [
        f"{payload.get('source')} [{label}]{via} {state}: "
        f"{payload.get('completed_units', 0)}/{total_text} units"
    ]
    for file_name, count in sorted((payload.get("shard_counts") or {}).items()):
        lines.append(f"  {file_name}: {count} unit(s)")
    if payload.get("duplicate_records"):
        lines.append(
            f"  {payload['duplicate_records']} duplicate record(s) across shards "
            "(first writer wins on merge)"
        )
    for lease in payload.get("active_leases") or []:
        # Replay-restored leases had their heartbeat reset at coordinator
        # restart, so heartbeat_age says nothing about worker liveness
        # until the holder renews once.
        restored = "; restored from journal, awaiting renewal" if lease.get("restored") else ""
        lines.append(
            f"  lease {lease['unit']}: held by {lease['worker']} "
            f"(heartbeat {lease['heartbeat_age']:.1f}s ago, ttl {lease['ttl']:.0f}s{restored})"
        )
    for lease in payload.get("stale_leases") or []:
        lines.append(
            f"  stale lease {lease['unit']}: worker {lease['worker']} presumed dead "
            f"(heartbeat {lease['heartbeat_age']:.1f}s ago, ttl {lease['ttl']:.0f}s); "
            "reclaimable"
        )
    if payload.get("torn_leases"):
        lines.append(f"  {payload['torn_leases']} torn lease file(s)")
    return "\n".join(lines)
