"""The work-unit executor: serial or process-pool, with checkpointing.

:func:`run_units` is the single entry point every parallelized experiment
goes through:

* ``jobs=1`` executes units in order, in process — this is *the* serial
  path, not a simulation of it, so serial results are bit-identical to
  what the pre-runtime drivers produced.
* ``jobs>1`` fans units out over a :class:`~concurrent.futures.
  ProcessPoolExecutor` and streams results back as they complete.
  Determinism is unaffected because every unit carries its own spawned
  RNG (see :mod:`repro.runtime.units`).
* With a :class:`~repro.runtime.checkpoint.RunCheckpoint`, completed
  units are appended to ``units.jsonl`` as they finish, and units already
  recorded there are *not* re-executed — an interrupted sweep resumes
  where it left off.

Workers must be module-level functions (they cross process boundaries by
pickle) mapping one :class:`WorkUnit` to one picklable result.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from time import perf_counter
from typing import Any

from repro.runtime.checkpoint import RunCheckpoint
from repro.runtime.units import WorkUnit

__all__ = ["run_units", "default_jobs", "reject_distributed_options"]


def _pool_child_init(telemetry_dir: str | None) -> None:
    """Pool-child initializer: arm ``--profile`` accounting.

    Runs once per worker process (fork or spawn).  When profiling is
    requested the child enables the phase accumulators and registers an
    exit hook that serializes its snapshot into a per-process telemetry
    shard — the same serialize-and-merge seam ``drain_units`` uses, which
    is what lets ``--profile`` work at any ``--jobs``.
    """
    from repro.observability.trace import profile_requested

    if not profile_requested():
        return
    from repro.utils import phases

    phases.enable()
    if telemetry_dir is None:
        return
    from multiprocessing import util as _mp_util

    def _dump() -> None:
        from repro.observability.trace import TelemetryWriter

        snap = phases.snapshot()
        if not snap:
            return
        writer = TelemetryWriter.open(
            telemetry_dir, f"pool-{socket.gethostname()}-{os.getpid()}"
        )
        if writer is not None:
            writer.phases(snap)
            writer.close()

    # Pool children never run atexit hooks (multiprocessing bootstrap
    # ends in os._exit); util.Finalize registrations DO run on the way
    # out, which is the only reliable per-child exit seam.
    _mp_util.Finalize(None, _dump, exitpriority=10)


def _timed_call(worker: Callable[[WorkUnit], Any], unit: WorkUnit) -> tuple[Any, float]:
    """Run ``worker(unit)`` in a pool child, returning (result, seconds).

    The timing wrapper is telemetry-only: the worker sees the identical
    unit (own spawned RNG, untouched), so results stay bit-identical with
    telemetry on or off.
    """
    t0 = perf_counter()
    result = worker(unit)
    return result, perf_counter() - t0


def reject_distributed_options(options: dict[str, Any]) -> None:
    """Refuse distributed-only tuning under the local backend.

    Shared by :func:`run_units` and :func:`repro.sweeps.run_sweep` so the
    two entry points cannot drift: a user who sets lease timing expects
    the distributed backend, and silently dropping the options would hide
    the mistake.
    """
    for option, value in options.items():
        if value is not None:
            raise ValueError(
                f"{option} is a distributed-backend option and has no effect with "
                "backend='local'"
            )


def default_jobs() -> int:
    """A reasonable worker count for this machine (all visible CPUs)."""
    return max(os.cpu_count() or 1, 1)


def _mp_context():
    """Prefer fork (cheap, inherits sys.path); fall back to spawn.

    ``REPRO_MP_START_METHOD`` overrides the choice — remote hosts won't
    always fork, and the test suite uses this to run the jobs-invariance
    and resume properties under spawn as well.
    """
    override = os.environ.get("REPRO_MP_START_METHOD")
    if override:
        return multiprocessing.get_context(override)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _ensure_child_importable() -> None:
    """Make sure spawned children can ``import repro``.

    Under the spawn start method a worker re-imports its module from
    scratch; if the parent got ``repro`` on ``sys.path`` without setting
    ``PYTHONPATH`` (e.g. via pytest's ``pythonpath`` ini option), the
    child would fail.  Exporting the package root is harmless otherwise.
    """
    import repro

    root = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    if root not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = root + (os.pathsep + existing if existing else "")


def run_units(
    units: Iterable[WorkUnit],
    worker: Callable[[WorkUnit], Any],
    *,
    jobs: int = 1,
    checkpoint: RunCheckpoint | None = None,
    on_result: Callable[[WorkUnit, Any, bool], None] | None = None,
    backend: str = "local",
    worker_id: str | None = None,
    lease_ttl: float | None = None,
    heartbeat_interval: float | None = None,
    poll_interval: float | None = None,
    coordinator_url: str | None = None,
    retry_timeout: float | None = None,
    claim_batch: int | None = None,
) -> dict[str, Any]:
    """Execute ``units`` and return ``{unit.key: result}``.

    Parameters
    ----------
    units:
        The work units; keys must be unique.
    worker:
        Module-level function mapping one unit to one result.
    jobs:
        Worker processes; ``1`` runs everything serially in-process.
    checkpoint:
        Optional :class:`RunCheckpoint`.  Units whose keys are already
        recorded are returned from the checkpoint without re-executing;
        freshly completed units are appended as they finish.  Under the
        coordinator backend it only supplies the result codecs — the
        coordinator owns the run directory.
    on_result:
        Streaming callback ``(unit, result, cached)`` invoked once per
        unit — with ``cached=True`` for units restored from the
        checkpoint, in unit order before any execution starts.  (The
        distributed and coordinator backends invoke it only after the
        whole run completes, with ``cached=True`` for units executed by
        peers.)
    backend:
        ``"local"`` (this process plus an optional process pool),
        ``"distributed"`` (lease-coordinated workers over the shared run
        directory — see :mod:`repro.runtime.distributed`; requires
        ``checkpoint``), or ``"coordinator"`` (workers speaking JSON to
        a ``repro sweep serve`` coordinator — no shared filesystem;
        requires ``coordinator_url``).
    worker_id, lease_ttl, heartbeat_interval, poll_interval:
        Distributed-backend tuning (worker shard identity, lease TTL in
        seconds, heartbeat renewal interval, wait-poll interval);
        rejected under the local backend rather than silently ignored.
        ``lease_ttl`` is filesystem-only: a coordinator's TTL is set on
        the coordinator (``repro sweep serve --ttl``).
    coordinator_url, retry_timeout:
        Coordinator backend: the coordinator's base URL and the bounded
        retry budget for transient errors.
    claim_batch:
        Units leased per claim request (default 1).  Batching amortizes
        claim/release round trips — the big win on the coordinator
        backend; results still record unit by unit, so crash granularity
        is unchanged.  Rejected under the local backend.
    """
    units = list(units)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if backend not in ("local", "distributed", "coordinator"):
        raise ValueError(
            f"backend must be 'local', 'distributed', or 'coordinator', got {backend!r}"
        )
    if backend != "coordinator" and coordinator_url is not None:
        raise ValueError(
            f"coordinator_url has no effect with backend={backend!r}; "
            "pass backend='coordinator'"
        )
    if backend == "coordinator":
        if coordinator_url is None:
            raise ValueError(
                "backend='coordinator' requires coordinator_url (the "
                "`repro sweep serve` endpoint is the coordination medium)"
            )
        if lease_ttl is not None:
            raise ValueError(
                "lease_ttl is owned by the coordinator (repro sweep serve "
                "--ttl); it cannot be set worker-side"
            )
        from repro.runtime.distributed import run_units_coordinator

        return run_units_coordinator(
            units,
            worker,
            coordinator_url,
            jobs=jobs,
            worker_id=worker_id,
            encode=checkpoint.encode if checkpoint is not None else None,
            decode=checkpoint.decode if checkpoint is not None else None,
            heartbeat_interval=heartbeat_interval,
            poll_interval=poll_interval,
            retry_timeout=retry_timeout,
            claim_batch=1 if claim_batch is None else claim_batch,
            on_result=on_result,
        )
    if backend == "distributed":
        if checkpoint is None:
            raise ValueError(
                "backend='distributed' requires a checkpoint run directory "
                "(the shared filesystem is the coordination medium)"
            )
        if retry_timeout is not None:
            raise ValueError(
                "retry_timeout is a coordinator-backend option and has no "
                "effect with backend='distributed'"
            )
        from repro.runtime.distributed import run_units_distributed

        return run_units_distributed(
            units,
            worker,
            checkpoint,
            jobs=jobs,
            worker_id=worker_id,
            lease_ttl=lease_ttl,
            heartbeat_interval=heartbeat_interval,
            poll_interval=poll_interval,
            claim_batch=1 if claim_batch is None else claim_batch,
            on_result=on_result,
        )
    reject_distributed_options(
        {
            "worker_id": worker_id,
            "lease_ttl": lease_ttl,
            "heartbeat_interval": heartbeat_interval,
            "poll_interval": poll_interval,
            "retry_timeout": retry_timeout,
            "claim_batch": claim_batch,
        }
    )
    keys = [u.key for u in units]
    if len(set(keys)) != len(keys):
        raise ValueError("work-unit keys must be unique within a run")

    results: dict[str, Any] = {}
    if checkpoint is not None:
        done = checkpoint.completed()
        for unit in units:
            if unit.key in done:
                results[unit.key] = done[unit.key]
                if on_result is not None:
                    on_result(unit, done[unit.key], True)
    pending = [u for u in units if u.key not in results]

    from repro.observability.trace import TelemetryWriter, profile_requested
    from repro.utils import phases

    telemetry_dir: str | Path | None
    if checkpoint is not None:
        telemetry_dir = checkpoint.run_dir
    else:
        telemetry_dir = os.environ.get("REPRO_TELEMETRY_DIR") or None
    wid = f"local-{socket.gethostname()}-{os.getpid()}"
    telemetry = TelemetryWriter.open(telemetry_dir, wid) if pending else None
    if profile_requested():
        phases.enable()

    def _finish(unit: WorkUnit, result: Any, execute_s: float) -> None:
        results[unit.key] = result
        t0 = perf_counter()
        if checkpoint is not None:
            checkpoint.record(unit.key, result)
        if telemetry is not None:
            telemetry.span(
                unit.key,
                claim_s=0.0,
                execute_s=execute_s,
                record_s=perf_counter() - t0,
                release_s=0.0,
            )
        if on_result is not None:
            on_result(unit, result, False)

    try:
        if jobs == 1 or len(pending) <= 1:
            for unit in pending:
                t0 = perf_counter()
                result = worker(unit)
                _finish(unit, result, perf_counter() - t0)
        elif pending:
            _ensure_child_importable()
            max_workers = min(jobs, len(pending))
            child_dir = None if telemetry_dir is None else str(telemetry_dir)
            with ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=_mp_context(),
                initializer=_pool_child_init,
                initargs=(child_dir,),
            ) as pool:
                futures = {pool.submit(_timed_call, worker, unit): unit for unit in pending}
                for future in as_completed(futures):
                    result, execute_s = future.result()
                    _finish(futures[future], result, execute_s)
            # Pool children dumped their phase snapshots at exit (the
            # shutdown above joins them); nothing to collect here.
    finally:
        if telemetry is not None:
            snap = phases.snapshot()
            if snap:
                telemetry.phases(snap)
                phases.reset()
            telemetry.close()
    return results
