"""JSON-lines checkpointing for interruptible experiment runs.

A *run directory* holds an identity file plus one or more result files:

``manifest.json``
    The run's identity: what experiment, which schedulers/configs, how
    many units.  A resumed run must present an identical manifest — a
    mismatch means the checkpoint belongs to a different experiment and
    silently mixing results would corrupt the sweep.
``units.jsonl``
    One JSON object per *completed* work unit: ``{"key": ..., "result":
    ...}``.  Records are appended and flushed as units finish, so an
    interrupted run loses at most the units that were in flight.
``units-<worker>.jsonl``
    Per-worker result *shards* written by the distributed backend
    (:mod:`repro.runtime.distributed`): each worker process appends to
    its own shard, so concurrent writers on a shared filesystem never
    interleave inside one file.  :meth:`RunCheckpoint.completed` merges
    ``units.jsonl`` and every shard, deduplicating on unit key
    (first-recorded wins; duplicates are logged, and are bit-identical
    anyway because every unit owns a deterministic RNG stream).

A killed writer can leave a *torn* final line (the process died
mid-``write``).  Torn and otherwise unparseable lines are skipped — and
logged — on load, and :meth:`RunCheckpoint.record` repairs a missing
trailing newline before appending, so a resumed run never glues a fresh
record onto a torn one (which would silently lose the fresh result).

Results are encoded/decoded through caller-supplied functions so the
executor stays agnostic of what a unit produces; PISA units, for
example, serialize the adversarial instance via
:meth:`~repro.core.instance.ProblemInstance.to_dict` and drop the
per-iteration annealing history (summary statistics survive the round
trip, trajectories do not).
"""

from __future__ import annotations

import json
import logging
import os
import re
import secrets
import shutil
import time
from collections.abc import Callable, Iterator
from hashlib import sha1
from pathlib import Path
from typing import Any

__all__ = [
    "CheckpointError",
    "RunCheckpoint",
    "append_jsonl",
    "iter_jsonl",
    "iter_jsonl_segments",
    "iter_result_records",
    "journal_segment_path",
    "journal_segments",
    "journal_snapshots",
    "result_file_paths",
    "safe_filename",
    "snapshot_path",
]

logger = logging.getLogger(__name__)

#: Glob matching per-worker result shards next to ``units.jsonl``.
SHARD_GLOB = "units-*.jsonl"

#: Coordinator journal segment naming.  Segment 0 is the bare
#: ``coordinator.jsonl`` (every pre-segmentation run directory is a
#: valid one-segment chain); rolled segments are
#: ``coordinator.000001.jsonl``, ``coordinator.000002.jsonl``, ...
#: A ``snapshot.<seq>.json`` captures the coordinator's full state as
#: of the *end* of segment ``<seq>``, so restart = newest valid
#: snapshot + replay of the segments after it.  The path layout lives
#: here (below the coordinator) so ``runs gc`` and fresh-initialization
#: can be segment-aware without importing the coordinator.
JOURNAL_SEGMENT_0 = "coordinator.jsonl"
_SEGMENT_RE = re.compile(r"^coordinator\.(\d{6})\.jsonl$")
_SNAPSHOT_RE = re.compile(r"^snapshot\.(\d{6})\.json$")


def journal_segment_path(run_dir: str | Path, seq: int) -> Path:
    """The path of coordinator journal segment ``seq`` in ``run_dir``."""
    run_dir = Path(run_dir)
    if seq == 0:
        return run_dir / JOURNAL_SEGMENT_0
    return run_dir / f"coordinator.{seq:06d}.jsonl"


def journal_segments(run_dir: str | Path) -> list[tuple[int, Path]]:
    """Existing journal segments of ``run_dir`` as ``(seq, path)``, ascending."""
    run_dir = Path(run_dir)
    out: list[tuple[int, Path]] = []
    legacy = run_dir / JOURNAL_SEGMENT_0
    if legacy.is_file():
        out.append((0, legacy))
    for path in run_dir.glob("coordinator.*.jsonl"):
        match = _SEGMENT_RE.match(path.name)
        if match and path.is_file():
            out.append((int(match.group(1)), path))
    return sorted(out)


def snapshot_path(run_dir: str | Path, seq: int) -> Path:
    """The snapshot covering all events of journal segments ``<= seq``."""
    return Path(run_dir) / f"snapshot.{seq:06d}.json"


def journal_snapshots(run_dir: str | Path) -> list[tuple[int, Path]]:
    """Existing coordinator snapshots as ``(seq, path)``, ascending."""
    out: list[tuple[int, Path]] = []
    for path in Path(run_dir).glob("snapshot.*.json"):
        match = _SNAPSHOT_RE.match(path.name)
        if match and path.is_file():
            out.append((int(match.group(1)), path))
    return sorted(out)


def iter_jsonl_segments(
    paths: "list[Path]", *, log: bool = True, what: str = "record"
) -> Iterator[Any]:
    """Chain :func:`iter_jsonl` over an ordered list of segment files.

    The same torn-line tolerance applies per segment: a tail torn by a
    kill mid-rollover is skipped in *its* segment and reading continues
    with the next one, so one damaged boundary never hides the events
    that follow it.
    """
    for path in paths:
        yield from iter_jsonl(path, log=log, what=what)


class CheckpointError(ValueError):
    """A run directory refused an operation (manifest mismatch, missing
    ``resume=True`` over completed units).  Subclasses :class:`ValueError`
    for backward compatibility; callers that want to treat checkpoint
    refusals as user errors (the CLI) can catch this specifically without
    swallowing unrelated ``ValueError``\\ s from experiment code."""


def _identity(value: Any) -> Any:
    return value


def safe_filename(text: str) -> str:
    """A filesystem-safe, collision-free name for an arbitrary string.

    Unit keys (``"HEFT|CPoP|r2"``) and worker ids become lease/shard file
    names; anything outside ``[A-Za-z0-9._-]`` is replaced and a short
    digest of the original keeps distinct inputs distinct.
    """
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", text)[:80]
    return f"{safe}-{sha1(text.encode()).hexdigest()[:8]}"


def result_file_paths(run_dir: str | Path) -> list[Path]:
    """Every result file of ``run_dir``: ``units.jsonl`` + sorted shards.

    The order is the deduplication order of :meth:`RunCheckpoint.completed`
    — deterministic, so "first writer wins" means the same record on every
    read.
    """
    run_dir = Path(run_dir)
    paths = []
    units = run_dir / RunCheckpoint.UNITS_NAME
    if units.is_file():
        paths.append(units)
    paths += sorted(p for p in run_dir.glob(SHARD_GLOB) if p.is_file())
    return paths


def iter_jsonl(path: Path, *, log: bool = True, what: str = "record") -> Iterator[Any]:
    """Yield the parseable JSON values of one JSON-lines file, tolerating
    what killed writers leave behind.

    A torn final line (or mid-file garbage from a corrupted filesystem) is
    skipped — with a warning naming ``what`` when ``log`` is set — instead
    of raising ``json.JSONDecodeError``.  This is the one torn-line-repair
    reader behind result shards *and* the coordinator journal, so the two
    recovery paths can never diverge in what they tolerate.
    """
    try:
        # errors="replace": corrupted bytes become unparseable lines that
        # fall into the skip-and-log path below instead of crashing resume.
        text = path.read_text(errors="replace")
    except OSError:
        return
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            if log:
                logger.warning(
                    "%s:%d: skipping unparseable %s line "
                    "(torn write from an interrupted run)",
                    path,
                    lineno,
                    what,
                )
            continue


def iter_result_records(path: Path, *, log: bool = True) -> Iterator[dict]:
    """Yield the well-formed ``{"key": ..., "result": ...}`` records of one
    result file, tolerating what killed writers leave behind.

    A torn or malformed line is skipped — with a warning when ``log`` is
    set — instead of raising: the unit it belonged to is simply not
    completed and will be re-executed on resume.
    """
    for record in iter_jsonl(path, log=log, what="checkpoint"):
        if not isinstance(record, dict) or "key" not in record or "result" not in record:
            if log:
                logger.warning(
                    "%s: skipping malformed checkpoint record (no unit key/result)",
                    path,
                )
            continue
        yield record


class RunCheckpoint:
    """Append-only checkpoint of completed work units in a run directory."""

    MANIFEST_NAME = "manifest.json"
    UNITS_NAME = "units.jsonl"

    def __init__(
        self,
        run_dir: str | Path,
        encode: Callable[[Any], Any] | None = None,
        decode: Callable[[Any], Any] | None = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        # ``None`` stays ``None`` so checkpoints with module-level codecs
        # (or none) pickle cleanly across process boundaries.
        self._encode = encode
        self._decode = decode

    @property
    def encode(self) -> Callable[[Any], Any] | None:
        """The result encoder this checkpoint applies on record (or None)."""
        return self._encode

    @property
    def decode(self) -> Callable[[Any], Any] | None:
        """The result decoder this checkpoint applies on load (or None)."""
        return self._decode

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / self.MANIFEST_NAME

    @property
    def units_path(self) -> Path:
        return self.run_dir / self.UNITS_NAME

    def shard_path(self, worker_id: str) -> Path:
        """The result shard a distributed worker appends to."""
        return self.run_dir / f"units-{safe_filename(worker_id)}.jsonl"

    def result_paths(self) -> list[Path]:
        """Existing result files, in deduplication order."""
        return result_file_paths(self.run_dir)

    def _has_results(self) -> bool:
        for path in self.result_paths():
            try:
                if path.stat().st_size > 0:
                    return True
            except OSError:
                continue
        return False

    # ------------------------------------------------------------------ #
    def initialize(self, manifest: dict, resume: bool = False) -> None:
        """Write (fresh run) or validate (resume) the run manifest.

        A resumed run requires the stored manifest to match ``manifest``
        exactly and keeps the completed-unit records.  A fresh run
        refuses to start over a directory that already holds completed
        units — hours of checkpointed work must never vanish because
        ``resume`` was forgotten; pass ``resume=True`` or use a new
        directory.

        ``resume=True`` over an *uninitialized* directory initializes it,
        which makes initialization idempotent: any number of distributed
        workers can race to attach to one run directory — the manifest is
        published with an atomic exclusive link, exactly one racer wins,
        and the losers validate the winner's (identical) manifest.  The
        attach path never deletes anything: by the time a loser notices
        it lost, the winner may already hold leases and shard records.
        """
        if resume:
            if self._validate_stored(manifest):
                return
            if self._has_results():
                # Results without a manifest is a damaged run — unless a
                # concurrent winner published the manifest after our first
                # look; re-check before refusing.
                if self._validate_stored(manifest):
                    return
                raise CheckpointError(
                    f"cannot resume from {self.run_dir}: unit results exist but "
                    "manifest.json is missing"
                )
            if not self._publish_manifest(manifest):
                # Lost the initialization race: validate the winner's.
                if not self._validate_stored(manifest):
                    raise CheckpointError(
                        f"cannot resume from {self.run_dir}: manifest appeared and "
                        "vanished mid-initialization"
                    )
            return
        if self._has_results():
            raise CheckpointError(
                f"run directory {self.run_dir} already holds completed units; "
                "pass resume=True (--resume) to continue it, or point the run "
                "at a fresh directory"
            )
        holder = self._live_lease_holder()
        if holder is not None:
            raise CheckpointError(
                f"run directory {self.run_dir} has a live worker lease (held by "
                f"{holder!r}); a fresh run over it would let that worker record "
                "results for a different experiment — stop the worker or use "
                "another directory"
            )
        self._write_manifest(manifest)
        self.units_path.write_text("")
        # A fresh run over a previously-abandoned directory must not
        # inherit its (empty — the refusal above covers non-empty) shards,
        # its dead lease files, its telemetry shards, or the previous
        # sweep's coordinator journal chain — replaying another
        # experiment's journal segments or snapshot into a fresh
        # coordinator would resurrect its leases and completion set, and
        # stale telemetry would misreport this run's fleet.
        stale: list[Path] = list(self.run_dir.glob(SHARD_GLOB))
        stale += list(self.run_dir.glob("telemetry-*.jsonl"))
        stale += [path for _, path in journal_segments(self.run_dir)]
        stale += [path for _, path in journal_snapshots(self.run_dir)]
        for path in stale:
            try:
                path.unlink()
            except OSError:
                pass
        leases = self.run_dir / "leases"
        if leases.is_dir():
            shutil.rmtree(leases, ignore_errors=True)

    def _live_lease_holder(self) -> str | None:
        """Worker id of a seemingly-live lease in this directory, if any.

        Imported lazily: :mod:`repro.runtime.distributed` depends on this
        module, so the dependency must not be circular at import time.
        """
        from repro.runtime.distributed import LeaseDir, lease_seems_live

        now = time.time()
        for path, lease in LeaseDir(self.run_dir).leases():
            if lease_seems_live(lease, path, now):
                return lease.worker if lease is not None else "<torn lease>"
        return None

    def _validate_stored(self, manifest: dict) -> bool:
        """True if a stored manifest exists and matches; raises on mismatch."""
        if not self.manifest_path.exists():
            return False
        stored = self.manifest()
        if stored != manifest:
            raise CheckpointError(
                f"cannot resume from {self.run_dir}: checkpoint manifest does not "
                f"match this run (stored {stored!r}, expected {manifest!r})"
            )
        return True

    def _manifest_tmp_path(self) -> Path:
        # pid alone is not unique across hosts sharing the directory; a
        # random suffix keeps two same-pid workers from tearing each
        # other's temp file mid-publish.
        suffix = f"{os.getpid()}.{secrets.token_hex(4)}"
        return self.manifest_path.with_name(f"{self.MANIFEST_NAME}.tmp.{suffix}")

    def _write_manifest(self, manifest: dict) -> None:
        # Atomic replace: a concurrent worker reading the manifest must
        # never observe a torn half-written file.
        tmp = self._manifest_tmp_path()
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.manifest_path)

    def _publish_manifest(self, manifest: dict) -> bool:
        """Atomically create the manifest; False if another racer won.

        ``os.link`` is the portable exclusive-publish primitive (atomic on
        POSIX and, unlike ``O_EXCL`` + write, never exposes a torn file):
        the content is fully written to a temp file first and the link
        either appears whole or not at all.
        """
        tmp = self._manifest_tmp_path()
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        try:
            os.link(tmp, self.manifest_path)
            return True
        except FileExistsError:
            return False
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass

    def manifest(self) -> dict | None:
        """The stored manifest, or None for an uninitialized directory."""
        if not self.manifest_path.exists():
            return None
        return json.loads(self.manifest_path.read_text())

    # ------------------------------------------------------------------ #
    def completed(self) -> dict[str, Any]:
        """Decoded results of every completed unit, keyed by unit key.

        Merges ``units.jsonl`` with every per-worker shard.  A unit
        recorded more than once (a worker presumed dead that woke up after
        its lease was reclaimed) keeps its first-recorded result — the
        duplicate is logged, and is bit-identical anyway because units own
        deterministic RNG streams.
        """
        decode = self._decode if self._decode is not None else _identity
        out: dict[str, Any] = {}
        for path in self.result_paths():
            for record in iter_result_records(path):
                key = record["key"]
                if key in out:
                    logger.warning(
                        "%s: duplicate record for unit %r ignored (first writer wins)",
                        path,
                        key,
                    )
                    continue
                out[key] = decode(record["result"])
        return out

    def record(self, key: str, result: Any, shard: str | None = None) -> None:
        """Append one completed unit; flushed immediately so an interrupt
        after this call never loses the unit.

        With ``shard``, the record goes to that worker's ``units-*.jsonl``
        shard instead of ``units.jsonl`` (the distributed backend's
        one-writer-per-file rule).  If a previously killed writer left the
        file without a trailing newline, a repair newline is inserted first
        — appending straight after torn bytes would corrupt *this* record
        too, silently losing a successfully executed unit.
        """
        encode = self._encode if self._encode is not None else _identity
        path = self.units_path if shard is None else self.shard_path(shard)
        append_jsonl(path, {"key": key, "result": encode(result)})

    def record_many(self, items, shard: str | None = None) -> None:
        """Append several completed units (``(key, result)`` pairs) under
        one open+flush — the batched-record flush path.  Durability is
        group-grained: an interrupt can lose the whole group but never
        tear an individual line (same torn-tail repair as :meth:`record`).
        """
        encode = self._encode if self._encode is not None else _identity
        path = self.units_path if shard is None else self.shard_path(shard)
        append_jsonl_many(
            path, ({"key": key, "result": encode(result)} for key, result in items)
        )


def append_jsonl(path: Path, obj: Any) -> None:
    """Append ``obj`` as one JSON line, flushed, repairing a torn tail.

    If a previously killed writer left the file without a trailing
    newline, a repair newline is inserted first — appending straight
    after torn bytes would corrupt *this* line too.  Shared by checkpoint
    records and the coordinator journal.
    """
    line = json.dumps(obj)
    with path.open("ab") as fh:
        if fh.tell() > 0 and not _ends_with_newline(path):
            fh.write(b"\n")
        fh.write(line.encode() + b"\n")
        fh.flush()


def append_jsonl_many(path: Path, objs) -> None:
    """Append several JSON lines under one open+flush (torn-tail repair
    as in :func:`append_jsonl`); a no-op for an empty iterable."""
    lines = [json.dumps(obj) for obj in objs]
    if not lines:
        return
    with path.open("ab") as fh:
        if fh.tell() > 0 and not _ends_with_newline(path):
            fh.write(b"\n")
        fh.write(("\n".join(lines) + "\n").encode())
        fh.flush()


def _ends_with_newline(path: Path) -> bool:
    try:
        with path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) == b"\n"
    except OSError:
        return True
