"""JSON-lines checkpointing for interruptible experiment runs.

A *run directory* holds two files:

``manifest.json``
    The run's identity: what experiment, which schedulers/configs, how
    many units.  A resumed run must present an identical manifest — a
    mismatch means the checkpoint belongs to a different experiment and
    silently mixing results would corrupt the sweep.
``units.jsonl``
    One JSON object per *completed* work unit: ``{"key": ..., "result":
    ...}``.  Records are appended and flushed as units finish, so an
    interrupted run loses at most the units that were in flight.  A torn
    final line (the process died mid-write) is ignored on load.

Results are encoded/decoded through caller-supplied functions so the
executor stays agnostic of what a unit produces; PISA units, for
example, serialize the adversarial instance via
:meth:`~repro.core.instance.ProblemInstance.to_dict` and drop the
per-iteration annealing history (summary statistics survive the round
trip, trajectories do not).
"""

from __future__ import annotations

import json
from collections.abc import Callable
from pathlib import Path
from typing import Any

__all__ = ["CheckpointError", "RunCheckpoint"]


class CheckpointError(ValueError):
    """A run directory refused an operation (manifest mismatch, missing
    ``resume=True`` over completed units).  Subclasses :class:`ValueError`
    for backward compatibility; callers that want to treat checkpoint
    refusals as user errors (the CLI) can catch this specifically without
    swallowing unrelated ``ValueError``\\ s from experiment code."""


class RunCheckpoint:
    """Append-only checkpoint of completed work units in a run directory."""

    MANIFEST_NAME = "manifest.json"
    UNITS_NAME = "units.jsonl"

    def __init__(
        self,
        run_dir: str | Path,
        encode: Callable[[Any], Any] | None = None,
        decode: Callable[[Any], Any] | None = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._encode = encode if encode is not None else (lambda result: result)
        self._decode = decode if decode is not None else (lambda payload: payload)

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / self.MANIFEST_NAME

    @property
    def units_path(self) -> Path:
        return self.run_dir / self.UNITS_NAME

    # ------------------------------------------------------------------ #
    def initialize(self, manifest: dict, resume: bool = False) -> None:
        """Write (fresh run) or validate (resume) the run manifest.

        A resumed run requires the stored manifest to match ``manifest``
        exactly and keeps the completed-unit records.  A fresh run
        refuses to start over a directory that already holds completed
        units — hours of checkpointed work must never vanish because
        ``resume`` was forgotten; pass ``resume=True`` or use a new
        directory.
        """
        if resume:
            if self.manifest_path.exists():
                stored = json.loads(self.manifest_path.read_text())
                if stored != manifest:
                    raise CheckpointError(
                        f"cannot resume from {self.run_dir}: checkpoint manifest does not "
                        f"match this run (stored {stored!r}, expected {manifest!r})"
                    )
                return
            if self.units_path.exists() and self.units_path.stat().st_size > 0:
                raise CheckpointError(
                    f"cannot resume from {self.run_dir}: units.jsonl exists but "
                    "manifest.json is missing"
                )
        elif self.units_path.exists() and self.units_path.stat().st_size > 0:
            raise CheckpointError(
                f"run directory {self.run_dir} already holds completed units; "
                "pass resume=True (--resume) to continue it, or point the run "
                "at a fresh directory"
            )
        self.manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        self.units_path.write_text("")

    def manifest(self) -> dict | None:
        """The stored manifest, or None for an uninitialized directory."""
        if not self.manifest_path.exists():
            return None
        return json.loads(self.manifest_path.read_text())

    # ------------------------------------------------------------------ #
    def completed(self) -> dict[str, Any]:
        """Decoded results of every completed unit, keyed by unit key."""
        if not self.units_path.exists():
            return {}
        out: dict[str, Any] = {}
        for line in self.units_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from an interrupted write
            out[record["key"]] = self._decode(record["result"])
        return out

    def record(self, key: str, result: Any) -> None:
        """Append one completed unit; flushed immediately so an interrupt
        after this call never loses the unit."""
        line = json.dumps({"key": key, "result": self._encode(result)})
        with self.units_path.open("a") as fh:
            fh.write(line + "\n")
            fh.flush()
