"""Work backends: the claim/renew/release/record/completed seam.

:func:`repro.runtime.distributed.drain_units` coordinates workers
through five operations — *which units are done*, *claim one*, *keep the
claim alive*, *record its result*, *let it go*.  This module makes that
seam an explicit protocol (:class:`WorkBackend`) with two transports:

:class:`FilesystemWorkBackend`
    The shared-run-directory protocol of :mod:`repro.runtime.distributed`
    (``O_EXCL`` lease files, per-worker result shards), repackaged
    behind the seam — behavior-identical to the pre-protocol drain loop.
:class:`HttpWorkBackend`
    A JSON-over-HTTP client for the coordinator served by ``repro sweep
    serve`` (:mod:`repro.runtime.coordinator`).  No shared filesystem is
    required: the coordinator owns the lease table, judges TTL staleness
    on its single clock, and stores results; this client only needs to
    reach its port.

The wire protocol is defined here as typed request/reply payloads
(:class:`ClaimRequest` … :class:`AckReply`) with validating
``from_dict`` parsers used by *both* sides — the server parses requests
through them and the client parses replies through them, so a malformed
message is rejected at the edge instead of corrupting state.

Every client request is **idempotent**, which is what makes bounded
retry safe when a response is lost (a coordinator SIGKILLed between
applying a request and replying): a re-sent claim by the current holder
re-grants the same token, a re-sent record of a completed unit is
acknowledged as a duplicate, a re-sent release of a vanished lease is a
no-op.  Transient failures (connection refused while the coordinator
restarts, 5xx, timeouts) are retried with exponential backoff up to
``retry_timeout`` seconds; protocol violations (4xx) raise
:class:`CoordinatorProtocolError` immediately.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
import urllib.parse
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.runtime.checkpoint import RunCheckpoint

__all__ = [
    "DEFAULT_RETRY_TIMEOUT",
    "WorkBackend",
    "FilesystemWorkBackend",
    "HttpWorkBackend",
    "CoordinatorError",
    "CoordinatorProtocolError",
    "CoordinatorLease",
    "CoordinatorBatchLease",
    "FilesystemBatchLease",
    "ClaimRequest",
    "ClaimReply",
    "LeaseRequest",
    "RecordRequest",
    "AckReply",
    "BatchClaimRequest",
    "BatchClaimReply",
    "BatchLeaseRequest",
    "BatchAckReply",
    "BatchRecordRequest",
    "BatchRecordReply",
]

#: Seconds an :class:`HttpWorkBackend` keeps retrying transient errors
#: before giving up.  Long enough to ride out a coordinator kill +
#: restart; short enough that a permanently-gone coordinator surfaces as
#: an error, not a hang.
DEFAULT_RETRY_TIMEOUT = 60.0
#: Per-request socket timeout (seconds).
DEFAULT_REQUEST_TIMEOUT = 10.0


class CoordinatorError(OSError):
    """The coordinator stayed unreachable past the retry budget.

    Subclasses :class:`OSError` so the drain loop's transient-failure
    handling (heartbeat threads retry next beat) treats it like the
    filesystem hiccups it already tolerates.
    """


class CoordinatorProtocolError(RuntimeError):
    """The coordinator understood the request and refused it (4xx) — a
    version mismatch, a foreign run directory, or a malformed payload.
    Never retried: re-sending the same request cannot help."""


# ---------------------------------------------------------------------- #
# The protocol
# ---------------------------------------------------------------------- #
@runtime_checkable
class WorkBackend(Protocol):
    """What :func:`~repro.runtime.distributed.drain_units` needs from a
    coordination transport.

    Lease objects are backend-specific and treated as opaque by the
    drain loop except for three attributes every lease must expose:
    ``unit`` (the claimed key), ``ttl`` (seconds of heartbeat silence
    before peers may reclaim), and ``reclaimed`` (whether this claim
    stole a dead worker's stale lease).
    """

    #: Whether the drain loop must re-check completion after a claim.
    #: The filesystem protocol needs it (claim and completion live in
    #: different files); a coordinator refuses completed claims
    #: atomically, so the extra round-trip is skipped.
    recheck_after_claim: bool

    def completed_keys(self) -> set[str]:
        """The unit keys recorded so far, by any worker."""
        ...

    def claim(self, unit_key: str, worker: str) -> Any | None:
        """Try to claim ``unit_key``; ``None`` if it is held or done."""
        ...

    def renew(self, lease: Any) -> Any | None:
        """Refresh a claim's heartbeat; ``None`` if ownership was lost."""
        ...

    def release(self, lease: Any) -> None:
        """Give a claim up (after recording, or on failure)."""
        ...

    def record(self, lease: Any, result: Any) -> None:
        """Durably record the claimed unit's result — always called
        *before* :meth:`release` (the exactly-once ordering)."""
        ...

    def cleanup(self, completed: set[str]) -> None:
        """Sweep leftover claim state of already-completed units."""
        ...

    # -------------------------------------------------------------- #
    # Batched claims: one request leases up to N units under one
    # ownership token, amortizing per-unit round trips.  Batch lease
    # objects expose ``units`` (the *unfinished* members, shrinking as
    # results land), ``ttl``, ``worker``, and ``reclaimed_units``.
    # -------------------------------------------------------------- #
    def claim_batch(self, unit_keys: Any, worker: str) -> Any | None:
        """Try to claim every key in ``unit_keys`` at once; the grant may
        be partial (held/completed units are skipped).  ``None`` if
        nothing was grantable."""
        ...

    def renew_batch(self, batch: Any) -> Any | None:
        """Refresh the heartbeat of a batch's unfinished units; ``None``
        if ownership of *all* of them was lost."""
        ...

    def release_batch(self, batch: Any) -> None:
        """Give up the unfinished remainder of a batch."""
        ...

    def record_in_batch(self, batch: Any, unit_key: str, result: Any) -> None:
        """Record one finished member and release its claim immediately,
        so a crash later in the batch re-grants only unfinished units."""
        ...

    def release_unit(self, batch: Any, unit_key: str) -> None:
        """Give up one member without recording (e.g. found completed)."""
        ...

    def record_batch(self, batch: Any, results: Any) -> None:
        """Record several finished members (``{unit_key: result}``) in
        one flush and release their claims.  Durability is batch-grained:
        callers that need per-unit crash granularity (the drain loop)
        use :meth:`record_in_batch` instead; callers pushing sub-second
        units use this to amortize the per-record round trip."""
        ...


# ---------------------------------------------------------------------- #
# Filesystem transport (the PR-4 protocol behind the seam)
# ---------------------------------------------------------------------- #
class FilesystemWorkBackend:
    """The shared-run-directory lease protocol as a :class:`WorkBackend`.

    A thin composition of the existing pieces — :class:`~repro.runtime.
    distributed.LeaseDir` for claims and the incremental completed-unit
    tracker + :class:`~repro.runtime.checkpoint.RunCheckpoint` shards for
    results — so the filesystem path through :func:`drain_units` is
    *the same code* it was before the seam existed.
    """

    recheck_after_claim = True

    def __init__(self, checkpoint: RunCheckpoint, ttl: float | None = None) -> None:
        from repro.runtime.distributed import DEFAULT_LEASE_TTL, LeaseDir, _CompletedTracker

        self.checkpoint = checkpoint
        self.ttl = float(DEFAULT_LEASE_TTL if ttl is None else ttl)
        self._leases = LeaseDir(checkpoint.run_dir, ttl=self.ttl)
        self._tracker = _CompletedTracker(checkpoint)

    def completed_keys(self) -> set[str]:
        return self._tracker.refresh()

    def claim(self, unit_key: str, worker: str):
        return self._leases.claim(unit_key, worker)

    def renew(self, lease):
        return self._leases.renew(lease)

    def release(self, lease) -> None:
        self._leases.release(lease)

    def record(self, lease, result) -> None:
        self.checkpoint.record(lease.unit, result, shard=lease.worker)

    def cleanup(self, completed: set[str]) -> None:
        self._leases.cleanup(completed)

    # ------------------------------------------------------------------ #
    # Batched claims: a loop over the per-unit ``O_EXCL`` protocol.  The
    # filesystem has no cheaper primitive, so batching buys nothing here
    # beyond seam parity — each member still costs one lease file.
    # ------------------------------------------------------------------ #
    def claim_batch(self, unit_keys, worker: str) -> "FilesystemBatchLease | None":
        leases = {}
        for key in unit_keys:
            lease = self._leases.claim(key, worker)
            if lease is not None:
                leases[key] = lease
        if not leases:
            return None
        return FilesystemBatchLease(
            worker=worker,
            ttl=self.ttl,
            leases=leases,
            reclaimed_units=frozenset(k for k, l in leases.items() if l.reclaimed),
        )

    def renew_batch(self, batch) -> "FilesystemBatchLease | None":
        alive = 0
        for lease in list(batch.leases.values()):
            if self._leases.renew(lease) is not None:
                alive += 1
        return batch if alive else None

    def release_batch(self, batch) -> None:
        for key in list(batch.leases):
            self.release_unit(batch, key)

    def record_in_batch(self, batch, unit_key: str, result) -> None:
        self.checkpoint.record(unit_key, result, shard=batch.worker)
        self.release_unit(batch, unit_key)

    def record_batch(self, batch, results) -> None:
        for unit_key, result in results.items():
            self.record_in_batch(batch, unit_key, result)

    def release_unit(self, batch, unit_key: str) -> None:
        lease = batch.leases.pop(unit_key, None)
        if lease is not None:
            self._leases.release(lease)


# ---------------------------------------------------------------------- #
# Wire payloads (shared by client and server)
# ---------------------------------------------------------------------- #
def _require_str(data: dict, key: str) -> str:
    value = data.get(key)
    if not isinstance(value, str) or not value:
        raise ValueError(f"{key} must be a non-empty string, got {value!r}")
    return value


def _require_bool(data: dict, key: str, default: bool | None = None) -> bool:
    value = data.get(key, default)
    if not isinstance(value, bool):
        raise ValueError(f"{key} must be a boolean, got {value!r}")
    return value


def _payload_dict(data: Any, what: str) -> dict:
    if not isinstance(data, dict):
        raise ValueError(f"{what} payload must be an object, got {type(data).__name__}")
    return data


def _require_str_list(
    data: dict, key: str, *, allow_empty: bool = False, unique: bool = True
) -> tuple[str, ...]:
    value = data.get(key, [] if allow_empty else None)
    if not isinstance(value, list) or (not value and not allow_empty):
        raise ValueError(f"{key} must be a non-empty array of strings, got {value!r}")
    out: list[str] = []
    for item in value:
        if not isinstance(item, str) or not item:
            raise ValueError(f"{key} entries must be non-empty strings, got {item!r}")
        out.append(item)
    if unique and len(set(out)) != len(out):
        raise ValueError(f"{key} entries must be unique, got {out!r}")
    return tuple(out)


@dataclass(frozen=True)
class ClaimRequest:
    """``POST /claim`` body: one worker asking for one unit."""

    unit: str
    worker: str

    def to_dict(self) -> dict:
        return {"unit": self.unit, "worker": self.worker}

    @classmethod
    def from_dict(cls, data: Any) -> "ClaimRequest":
        data = _payload_dict(data, "claim request")
        return cls(unit=_require_str(data, "unit"), worker=_require_str(data, "worker"))


@dataclass(frozen=True)
class ClaimReply:
    """``POST /claim`` reply.

    ``granted`` carries an ownership ``token`` the worker must present on
    every later renew/release/record for this lease; ``completed`` means
    the unit is already recorded (nothing to do); a plain denial means a
    live peer holds it.
    """

    granted: bool
    token: str = ""
    ttl: float = 0.0
    reclaimed: bool = False
    completed: bool = False

    def to_dict(self) -> dict:
        return {
            "granted": self.granted,
            "token": self.token,
            "ttl": self.ttl,
            "reclaimed": self.reclaimed,
            "completed": self.completed,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "ClaimReply":
        data = _payload_dict(data, "claim reply")
        granted = _require_bool(data, "granted")
        token = data.get("token", "")
        if not isinstance(token, str) or (granted and not token):
            raise ValueError(f"token must be a string (non-empty when granted), got {token!r}")
        try:
            ttl = float(data.get("ttl", 0.0))
        except (TypeError, ValueError):
            raise ValueError(f"ttl must be a number, got {data.get('ttl')!r}") from None
        if granted and ttl <= 0:
            raise ValueError(f"granted claim must carry a positive ttl, got {ttl}")
        return cls(
            granted=granted,
            token=token,
            ttl=ttl,
            reclaimed=_require_bool(data, "reclaimed", default=False),
            completed=_require_bool(data, "completed", default=False),
        )


@dataclass(frozen=True)
class LeaseRequest:
    """``POST /renew`` and ``POST /release`` body: a held lease, proven
    by its ownership token."""

    unit: str
    worker: str
    token: str

    def to_dict(self) -> dict:
        return {"unit": self.unit, "worker": self.worker, "token": self.token}

    @classmethod
    def from_dict(cls, data: Any) -> "LeaseRequest":
        data = _payload_dict(data, "lease request")
        return cls(
            unit=_require_str(data, "unit"),
            worker=_require_str(data, "worker"),
            token=_require_str(data, "token"),
        )


@dataclass(frozen=True)
class RecordRequest:
    """``POST /record`` body: a finished unit's (encoded) result."""

    unit: str
    worker: str
    token: str
    result: Any

    def to_dict(self) -> dict:
        return {
            "unit": self.unit,
            "worker": self.worker,
            "token": self.token,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "RecordRequest":
        data = _payload_dict(data, "record request")
        if "result" not in data:
            raise ValueError("record request must carry a result")
        return cls(
            unit=_require_str(data, "unit"),
            worker=_require_str(data, "worker"),
            token=_require_str(data, "token"),
            result=data["result"],
        )


@dataclass(frozen=True)
class AckReply:
    """Reply to renew/release/record.

    ``ok=False`` with ``stale=True`` means the presented token no longer
    owns the lease (it expired and was re-granted); ``duplicate=True``
    on a record ack means the unit was already recorded and this result
    was dropped (first writer wins, as on the filesystem)."""

    ok: bool
    stale: bool = False
    duplicate: bool = False

    def to_dict(self) -> dict:
        return {"ok": self.ok, "stale": self.stale, "duplicate": self.duplicate}

    @classmethod
    def from_dict(cls, data: Any) -> "AckReply":
        data = _payload_dict(data, "ack reply")
        return cls(
            ok=_require_bool(data, "ok"),
            stale=_require_bool(data, "stale", default=False),
            duplicate=_require_bool(data, "duplicate", default=False),
        )


@dataclass(frozen=True)
class BatchClaimRequest:
    """``POST /claim-batch`` body: one worker asking for up to N units."""

    units: tuple[str, ...]
    worker: str

    def to_dict(self) -> dict:
        return {"units": list(self.units), "worker": self.worker}

    @classmethod
    def from_dict(cls, data: Any) -> "BatchClaimRequest":
        data = _payload_dict(data, "batch claim request")
        return cls(
            units=_require_str_list(data, "units"),
            worker=_require_str(data, "worker"),
        )


@dataclass(frozen=True)
class BatchClaimReply:
    """``POST /claim-batch`` reply.

    ``granted`` lists the units now leased to the worker — possibly a
    strict subset of the request (live peers hold the rest) — all under
    one ownership ``token`` and one journal record.  ``reclaimed`` is
    the subset of ``granted`` that stole a dead worker's stale leases;
    ``completed`` lists requested units that were already recorded.
    """

    granted: tuple[str, ...]
    token: str = ""
    ttl: float = 0.0
    reclaimed: tuple[str, ...] = ()
    completed: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "granted": list(self.granted),
            "token": self.token,
            "ttl": self.ttl,
            "reclaimed": list(self.reclaimed),
            "completed": list(self.completed),
        }

    @classmethod
    def from_dict(cls, data: Any) -> "BatchClaimReply":
        data = _payload_dict(data, "batch claim reply")
        if "granted" not in data:
            raise ValueError("batch claim reply must carry a granted array")
        granted = _require_str_list(data, "granted", allow_empty=True)
        token = data.get("token", "")
        if not isinstance(token, str) or (granted and not token):
            raise ValueError(f"token must be a string (non-empty when granted), got {token!r}")
        try:
            ttl = float(data.get("ttl", 0.0))
        except (TypeError, ValueError):
            raise ValueError(f"ttl must be a number, got {data.get('ttl')!r}") from None
        if granted and ttl <= 0:
            raise ValueError(f"granted batch claim must carry a positive ttl, got {ttl}")
        reclaimed = _require_str_list(data, "reclaimed", allow_empty=True)
        completed = _require_str_list(data, "completed", allow_empty=True)
        if not set(reclaimed) <= set(granted):
            raise ValueError(f"reclaimed {reclaimed!r} must be a subset of granted {granted!r}")
        if set(completed) & set(granted):
            raise ValueError(f"completed {completed!r} must be disjoint from granted {granted!r}")
        return cls(granted=granted, token=token, ttl=ttl, reclaimed=reclaimed, completed=completed)


@dataclass(frozen=True)
class BatchLeaseRequest:
    """``POST /renew-batch`` and ``POST /release-batch`` body: the
    unfinished remainder of a held batch, proven by its token."""

    units: tuple[str, ...]
    worker: str
    token: str

    def to_dict(self) -> dict:
        return {"units": list(self.units), "worker": self.worker, "token": self.token}

    @classmethod
    def from_dict(cls, data: Any) -> "BatchLeaseRequest":
        data = _payload_dict(data, "batch lease request")
        return cls(
            units=_require_str_list(data, "units"),
            worker=_require_str(data, "worker"),
            token=_require_str(data, "token"),
        )


@dataclass(frozen=True)
class BatchAckReply:
    """Reply to batch renew/release.  ``ok`` means at least one listed
    unit is still owned by the presented token; ``stale`` lists the
    units that no longer are (recorded, expired, or re-granted)."""

    ok: bool
    stale: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"ok": self.ok, "stale": list(self.stale)}

    @classmethod
    def from_dict(cls, data: Any) -> "BatchAckReply":
        data = _payload_dict(data, "batch ack reply")
        return cls(
            ok=_require_bool(data, "ok"),
            stale=_require_str_list(data, "stale", allow_empty=True),
        )


@dataclass(frozen=True)
class BatchRecordRequest:
    """``POST /record-batch`` body: several finished units' (encoded)
    results under one batch token — one request, one journal record,
    one group commit for the whole flush.  ``units`` and ``results``
    are parallel arrays."""

    units: tuple[str, ...]
    results: tuple[Any, ...]
    worker: str
    token: str

    def to_dict(self) -> dict:
        return {
            "units": list(self.units),
            "results": list(self.results),
            "worker": self.worker,
            "token": self.token,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "BatchRecordRequest":
        data = _payload_dict(data, "batch record request")
        units = _require_str_list(data, "units")
        results = data.get("results")
        if not isinstance(results, list) or len(results) != len(units):
            raise ValueError(
                f"results must be an array parallel to units "
                f"({len(units)} entries), got {results!r}"
            )
        return cls(
            units=units,
            results=tuple(results),
            worker=_require_str(data, "worker"),
            token=_require_str(data, "token"),
        )


@dataclass(frozen=True)
class BatchRecordReply:
    """``POST /record-batch`` reply.  ``ok`` acknowledges the whole
    flush as durable; ``duplicates`` lists units that were already
    recorded, whose results were dropped (first writer wins)."""

    ok: bool
    duplicates: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"ok": self.ok, "duplicates": list(self.duplicates)}

    @classmethod
    def from_dict(cls, data: Any) -> "BatchRecordReply":
        data = _payload_dict(data, "batch record reply")
        return cls(
            ok=_require_bool(data, "ok"),
            duplicates=_require_str_list(data, "duplicates", allow_empty=True),
        )


@dataclass(frozen=True)
class CoordinatorLease:
    """A claim granted by the coordinator, held client-side.

    The ``token`` is the proof of ownership: the coordinator re-grants
    an expired lease under a fresh token, so a stalled worker's renewals
    and releases are rejected instead of clobbering the new holder."""

    unit: str
    worker: str
    token: str
    ttl: float
    reclaimed: bool = False


@dataclass
class CoordinatorBatchLease:
    """A batch of claims granted under one token, held client-side.

    ``units`` is the *unfinished* remainder: :meth:`HttpWorkBackend.
    record_in_batch` drops each member as its result lands, so renewals
    and the final release cover only what is still in flight."""

    worker: str
    token: str
    ttl: float
    units: list[str]
    reclaimed_units: frozenset[str] = frozenset()

    @property
    def unit(self) -> str:
        """Log label standing in for the single-lease ``unit`` field."""
        return f"batch[{len(self.units)} units]"

    @property
    def reclaimed(self) -> bool:
        return bool(self.reclaimed_units)

    def drop(self, unit_key: str) -> None:
        if unit_key in self.units:
            self.units.remove(unit_key)


@dataclass
class FilesystemBatchLease:
    """A batch of per-unit ``O_EXCL`` leases treated as one claim."""

    worker: str
    ttl: float
    leases: dict[str, Any]
    reclaimed_units: frozenset[str] = frozenset()

    @property
    def units(self) -> list[str]:
        return list(self.leases)

    @property
    def unit(self) -> str:
        return f"batch[{len(self.leases)} units]"

    @property
    def reclaimed(self) -> bool:
        return bool(self.reclaimed_units)


# ---------------------------------------------------------------------- #
# HTTP transport
# ---------------------------------------------------------------------- #
class _TransientError(Exception):
    """A retryable transport failure (unreachable, reset, timeout, 5xx).

    ``retry_now`` marks failures on a *reused* keep-alive connection:
    the server most likely closed it while idle, so the retry should go
    out immediately on a fresh connection instead of backing off."""

    def __init__(self, message: str, *, retry_now: bool = False) -> None:
        super().__init__(message)
        self.retry_now = retry_now


class HttpWorkBackend:
    """A :class:`WorkBackend` speaking JSON to a ``repro sweep serve``
    coordinator — multi-host draining with no shared filesystem.

    Each thread keeps one ``http.client.HTTPConnection`` alive across
    requests (HTTP/1.1 keep-alive), so the steady-state cost per request
    is one round trip, not one TCP handshake plus one round trip.  A
    connection that dies mid-request is dropped and the request retried
    on a fresh one — safe because every request is idempotent.
    Connections are per-thread (``threading.local``) because the drain
    loop's heartbeat thread shares this backend with the main thread and
    ``HTTPConnection`` is not thread-safe.

    Parameters
    ----------
    url:
        The coordinator's base URL (``http://host:port``).
    encode:
        Unit-result encoder applied before ``POST /record`` (the same
        codec a :class:`RunCheckpoint` would hold); ``None`` records
        results as-is (they must be JSON-serializable).
    retry_timeout:
        Seconds to keep retrying transient failures (connection refused,
        5xx, timeouts) before raising :class:`CoordinatorError`.  This
        is what lets workers ride out a coordinator kill + restart
        without losing their place.  Backoff is exponential with jitter,
        and each pause probes the coordinator's port so a restarted
        coordinator is rejoined promptly instead of after the full pause.
        The same probe makes warm-standby failover (``repro sweep serve
        --standby``) transparent: the standby replays snapshot+journal
        and binds the *same* port, so from here a takeover is
        indistinguishable from a restart — lease tokens survive the
        journal, so in-flight batches keep renewing and recording
        against the new primary without re-claiming.
    persistent:
        ``False`` closes the connection after every round trip — the
        pre-batching wire behavior, kept for benchmark baselines and as
        an escape hatch for middleboxes that mishandle keep-alive.
    """

    recheck_after_claim = False

    def __init__(
        self,
        url: str,
        *,
        encode: Any | None = None,
        retry_timeout: float | None = None,
        request_timeout: float | None = None,
        persistent: bool = True,
    ) -> None:
        self.url = url.rstrip("/")
        if not self.url.startswith(("http://", "https://")):
            raise ValueError(f"coordinator url must be http(s)://host:port, got {url!r}")
        self._encode = encode
        self.retry_timeout = float(
            DEFAULT_RETRY_TIMEOUT if retry_timeout is None else retry_timeout
        )
        self.request_timeout = float(
            DEFAULT_REQUEST_TIMEOUT if request_timeout is None else request_timeout
        )
        self.persistent = bool(persistent)
        split = urllib.parse.urlsplit(self.url)
        self._secure = split.scheme == "https"
        self._address = (split.hostname or "localhost", split.port or (443 if self._secure else 80))
        self._local = threading.local()
        # Client-side transport telemetry (process-global registry): how
        # many wire requests this worker issued and how many were retried
        # after a transient failure — the worker-side mirror of the
        # coordinator's request metrics.
        from repro.observability.metrics import global_registry

        registry = global_registry()
        self._m_requests = registry.counter(
            "repro_backend_requests_total", "Coordinator wire requests issued."
        )
        self._m_retries = registry.counter(
            "repro_backend_retries_total",
            "Coordinator wire requests retried after a transient failure.",
        )

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _new_connection(self) -> http.client.HTTPConnection:
        cls = http.client.HTTPSConnection if self._secure else http.client.HTTPConnection
        return cls(self._address[0], self._address[1], timeout=self.request_timeout)

    def _drop_connection(self, conn: http.client.HTTPConnection | None = None) -> None:
        held = getattr(self._local, "conn", None)
        self._local.conn = None
        for candidate in (held, conn):
            if candidate is not None:
                try:
                    candidate.close()  # idempotent: closing twice is fine
                except OSError:
                    pass

    def close(self) -> None:
        """Close the calling thread's persistent connection, if any."""
        self._drop_connection()

    def _roundtrip(self, path: str, body: bytes | None, *, raw: bool = False) -> Any:
        conn = getattr(self._local, "conn", None)
        reused = conn is not None
        if conn is None:
            conn = self._new_connection()
        self._m_requests.inc()
        try:
            conn.request(
                "GET" if body is None else "POST",
                path,
                body=body,
                headers={} if body is None else {"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            status, reason = resp.status, resp.reason
            response_body = resp.read()
        except (http.client.HTTPException, ConnectionError, TimeoutError, OSError) as exc:
            self._drop_connection(conn)
            raise _TransientError(f"{type(exc).__name__}: {exc}", retry_now=reused) from exc
        if self.persistent and not resp.will_close:
            self._local.conn = conn
        else:
            self._drop_connection(conn)
        if 400 <= status < 500:
            raise CoordinatorProtocolError(
                f"coordinator rejected {path}: {_error_detail(status, reason, response_body)}"
            )
        if status >= 500:
            raise _TransientError(f"{status} {reason}")
        if raw:
            # Non-JSON endpoints (GET /metrics serves Prometheus text).
            return response_body.decode(errors="replace")
        try:
            return json.loads(response_body)
        except json.JSONDecodeError as exc:
            raise CoordinatorProtocolError(
                f"coordinator at {self.url} returned non-JSON for {path}: {exc}"
            ) from None

    def _request(self, path: str, payload: dict | None = None, *, raw: bool = False) -> Any:
        """One round-trip with bounded retry on transient failures."""
        body = None if payload is None else json.dumps(payload).encode()
        deadline = time.monotonic() + self.retry_timeout
        backoff = 0.05
        last: Exception | None = None
        while True:
            try:
                return self._roundtrip(path, body, raw=raw)
            except _TransientError as exc:
                last = exc
                self._m_retries.inc()
                if exc.retry_now:
                    continue  # stale keep-alive: next attempt opens fresh, no pause
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CoordinatorError(
                    f"coordinator at {self.url} unreachable after "
                    f"{self.retry_timeout:.0f}s of retries (last error: {last})"
                )
            pause = min(backoff * random.uniform(0.5, 1.5), remaining)
            backoff = min(backoff * 2.0, 1.0)
            self._wait_or_probe(pause)

    def _wait_or_probe(self, pause: float) -> bool:
        """Wait out a backoff pause, probing the coordinator's port in
        50 ms slices.  Returns early (``True``) the moment the port
        accepts a TCP connection, so a coordinator that restarts two
        seconds into a ten-second pause is rejoined in milliseconds."""
        deadline = time.monotonic() + pause
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            window = min(remaining, 0.05)
            started = time.monotonic()
            try:
                probe = socket.create_connection(self._address, timeout=window)
            except OSError:
                leftover = window - (time.monotonic() - started)
                if leftover > 0:  # instant refusal: pace the loop ourselves
                    time.sleep(min(leftover, max(0.0, deadline - time.monotonic())))
            else:
                probe.close()
                return True

    # ------------------------------------------------------------------ #
    def completed_keys(self) -> set[str]:
        reply = self._request("/completed")
        keys = reply.get("keys") if isinstance(reply, dict) else None
        if not isinstance(keys, list):
            raise CoordinatorProtocolError(
                f"coordinator /completed reply malformed: {reply!r}"
            )
        return set(keys)

    def claim(self, unit_key: str, worker: str) -> CoordinatorLease | None:
        payload = ClaimRequest(unit=unit_key, worker=worker).to_dict()
        reply = ClaimReply.from_dict(self._request("/claim", payload))
        if not reply.granted:
            return None
        return CoordinatorLease(
            unit=unit_key,
            worker=worker,
            token=reply.token,
            ttl=reply.ttl,
            reclaimed=reply.reclaimed,
        )

    def renew(self, lease: CoordinatorLease) -> CoordinatorLease | None:
        payload = LeaseRequest(unit=lease.unit, worker=lease.worker, token=lease.token)
        ack = AckReply.from_dict(self._request("/renew", payload.to_dict()))
        return lease if ack.ok else None

    def release(self, lease: CoordinatorLease) -> None:
        payload = LeaseRequest(unit=lease.unit, worker=lease.worker, token=lease.token)
        self._request("/release", payload.to_dict())  # stale release: benign no-op

    def record(self, lease: CoordinatorLease, result: Any) -> None:
        encoded = result if self._encode is None else self._encode(result)
        payload = RecordRequest(
            unit=lease.unit, worker=lease.worker, token=lease.token, result=encoded
        )
        ack = AckReply.from_dict(self._request("/record", payload.to_dict()))
        if not ack.ok:
            raise CoordinatorProtocolError(
                f"coordinator refused to record unit {lease.unit!r} "
                f"(stale={ack.stale})"
            )

    def cleanup(self, completed: set[str]) -> None:
        """No-op: the coordinator sweeps its own lease table."""

    # ------------------------------------------------------------------ #
    # Batched claims: one round trip per batch instead of per unit
    # ------------------------------------------------------------------ #
    def claim_batch(self, unit_keys, worker: str) -> CoordinatorBatchLease | None:
        payload = BatchClaimRequest(units=tuple(unit_keys), worker=worker).to_dict()
        reply = BatchClaimReply.from_dict(self._request("/claim-batch", payload))
        if not reply.granted:
            return None
        return CoordinatorBatchLease(
            worker=worker,
            token=reply.token,
            ttl=reply.ttl,
            units=list(reply.granted),
            reclaimed_units=frozenset(reply.reclaimed),
        )

    def renew_batch(self, batch: CoordinatorBatchLease) -> CoordinatorBatchLease | None:
        units = tuple(batch.units)
        if not units:
            return batch  # everything recorded; nothing left to keep alive
        payload = BatchLeaseRequest(units=units, worker=batch.worker, token=batch.token)
        ack = BatchAckReply.from_dict(self._request("/renew-batch", payload.to_dict()))
        return batch if ack.ok else None

    def release_batch(self, batch: CoordinatorBatchLease) -> None:
        units = tuple(batch.units)
        if not units:
            return
        payload = BatchLeaseRequest(units=units, worker=batch.worker, token=batch.token)
        self._request("/release-batch", payload.to_dict())  # stale members: benign

    def record_in_batch(self, batch: CoordinatorBatchLease, unit_key: str, result) -> None:
        lease = CoordinatorLease(
            unit=unit_key, worker=batch.worker, token=batch.token, ttl=batch.ttl
        )
        self.record(lease, result)  # the coordinator drops the member's lease
        batch.drop(unit_key)

    def record_batch(self, batch: CoordinatorBatchLease, results) -> None:
        units = tuple(results)
        if not units:
            return
        encoded = [
            results[u] if self._encode is None else self._encode(results[u])
            for u in units
        ]
        payload = BatchRecordRequest(
            units=units, results=tuple(encoded), worker=batch.worker, token=batch.token
        )
        ack = BatchRecordReply.from_dict(self._request("/record-batch", payload.to_dict()))
        if not ack.ok:
            raise CoordinatorProtocolError(
                f"coordinator refused to record batch of {len(units)} unit(s)"
            )
        for unit in units:
            batch.drop(unit)

    def release_unit(self, batch: CoordinatorBatchLease, unit_key: str) -> None:
        payload = BatchLeaseRequest(
            units=(unit_key,), worker=batch.worker, token=batch.token
        )
        self._request("/release-batch", payload.to_dict())
        batch.drop(unit_key)

    # ------------------------------------------------------------------ #
    # Read-side endpoints (status, manifests, final results)
    # ------------------------------------------------------------------ #
    def manifest(self) -> dict:
        reply = self._request("/manifest")
        if not isinstance(reply, dict):
            raise CoordinatorProtocolError(f"coordinator /manifest reply malformed: {reply!r}")
        return reply

    def status(self) -> dict:
        reply = self._request("/status")
        if not isinstance(reply, dict):
            raise CoordinatorProtocolError(f"coordinator /status reply malformed: {reply!r}")
        return reply

    def results(self) -> dict[str, Any]:
        reply = self._request("/results")
        results = reply.get("results") if isinstance(reply, dict) else None
        if not isinstance(results, dict):
            raise CoordinatorProtocolError(f"coordinator /results reply malformed: {reply!r}")
        return results

    def metrics_text(self) -> str:
        """The coordinator's ``GET /metrics`` body (Prometheus text
        exposition format, not JSON) — what ``repro sweep top`` polls."""
        text = self._request("/metrics", raw=True)
        if not isinstance(text, str):
            raise CoordinatorProtocolError(f"coordinator /metrics reply malformed: {text!r}")
        return text


def _error_detail(status: int, reason: str, raw: bytes) -> str:
    """The coordinator's ``{"error": ...}`` detail, or the bare status."""
    try:
        body = json.loads(raw)
        if isinstance(body, dict) and isinstance(body.get("error"), str):
            return f"{status} {body['error']}"
    except ValueError:
        pass
    return f"{status} {reason}"
