"""Work backends: the claim/renew/release/record/completed seam.

:func:`repro.runtime.distributed.drain_units` coordinates workers
through five operations — *which units are done*, *claim one*, *keep the
claim alive*, *record its result*, *let it go*.  This module makes that
seam an explicit protocol (:class:`WorkBackend`) with two transports:

:class:`FilesystemWorkBackend`
    The shared-run-directory protocol of :mod:`repro.runtime.distributed`
    (``O_EXCL`` lease files, per-worker result shards), repackaged
    behind the seam — behavior-identical to the pre-protocol drain loop.
:class:`HttpWorkBackend`
    A JSON-over-HTTP client for the coordinator served by ``repro sweep
    serve`` (:mod:`repro.runtime.coordinator`).  No shared filesystem is
    required: the coordinator owns the lease table, judges TTL staleness
    on its single clock, and stores results; this client only needs to
    reach its port.

The wire protocol is defined here as typed request/reply payloads
(:class:`ClaimRequest` … :class:`AckReply`) with validating
``from_dict`` parsers used by *both* sides — the server parses requests
through them and the client parses replies through them, so a malformed
message is rejected at the edge instead of corrupting state.

Every client request is **idempotent**, which is what makes bounded
retry safe when a response is lost (a coordinator SIGKILLed between
applying a request and replying): a re-sent claim by the current holder
re-grants the same token, a re-sent record of a completed unit is
acknowledged as a duplicate, a re-sent release of a vanished lease is a
no-op.  Transient failures (connection refused while the coordinator
restarts, 5xx, timeouts) are retried with exponential backoff up to
``retry_timeout`` seconds; protocol violations (4xx) raise
:class:`CoordinatorProtocolError` immediately.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.runtime.checkpoint import RunCheckpoint

__all__ = [
    "DEFAULT_RETRY_TIMEOUT",
    "WorkBackend",
    "FilesystemWorkBackend",
    "HttpWorkBackend",
    "CoordinatorError",
    "CoordinatorProtocolError",
    "CoordinatorLease",
    "ClaimRequest",
    "ClaimReply",
    "LeaseRequest",
    "RecordRequest",
    "AckReply",
]

#: Seconds an :class:`HttpWorkBackend` keeps retrying transient errors
#: before giving up.  Long enough to ride out a coordinator kill +
#: restart; short enough that a permanently-gone coordinator surfaces as
#: an error, not a hang.
DEFAULT_RETRY_TIMEOUT = 60.0
#: Per-request socket timeout (seconds).
DEFAULT_REQUEST_TIMEOUT = 10.0


class CoordinatorError(OSError):
    """The coordinator stayed unreachable past the retry budget.

    Subclasses :class:`OSError` so the drain loop's transient-failure
    handling (heartbeat threads retry next beat) treats it like the
    filesystem hiccups it already tolerates.
    """


class CoordinatorProtocolError(RuntimeError):
    """The coordinator understood the request and refused it (4xx) — a
    version mismatch, a foreign run directory, or a malformed payload.
    Never retried: re-sending the same request cannot help."""


# ---------------------------------------------------------------------- #
# The protocol
# ---------------------------------------------------------------------- #
@runtime_checkable
class WorkBackend(Protocol):
    """What :func:`~repro.runtime.distributed.drain_units` needs from a
    coordination transport.

    Lease objects are backend-specific and treated as opaque by the
    drain loop except for three attributes every lease must expose:
    ``unit`` (the claimed key), ``ttl`` (seconds of heartbeat silence
    before peers may reclaim), and ``reclaimed`` (whether this claim
    stole a dead worker's stale lease).
    """

    #: Whether the drain loop must re-check completion after a claim.
    #: The filesystem protocol needs it (claim and completion live in
    #: different files); a coordinator refuses completed claims
    #: atomically, so the extra round-trip is skipped.
    recheck_after_claim: bool

    def completed_keys(self) -> set[str]:
        """The unit keys recorded so far, by any worker."""
        ...

    def claim(self, unit_key: str, worker: str) -> Any | None:
        """Try to claim ``unit_key``; ``None`` if it is held or done."""
        ...

    def renew(self, lease: Any) -> Any | None:
        """Refresh a claim's heartbeat; ``None`` if ownership was lost."""
        ...

    def release(self, lease: Any) -> None:
        """Give a claim up (after recording, or on failure)."""
        ...

    def record(self, lease: Any, result: Any) -> None:
        """Durably record the claimed unit's result — always called
        *before* :meth:`release` (the exactly-once ordering)."""
        ...

    def cleanup(self, completed: set[str]) -> None:
        """Sweep leftover claim state of already-completed units."""
        ...


# ---------------------------------------------------------------------- #
# Filesystem transport (the PR-4 protocol behind the seam)
# ---------------------------------------------------------------------- #
class FilesystemWorkBackend:
    """The shared-run-directory lease protocol as a :class:`WorkBackend`.

    A thin composition of the existing pieces — :class:`~repro.runtime.
    distributed.LeaseDir` for claims and the incremental completed-unit
    tracker + :class:`~repro.runtime.checkpoint.RunCheckpoint` shards for
    results — so the filesystem path through :func:`drain_units` is
    *the same code* it was before the seam existed.
    """

    recheck_after_claim = True

    def __init__(self, checkpoint: RunCheckpoint, ttl: float | None = None) -> None:
        from repro.runtime.distributed import DEFAULT_LEASE_TTL, LeaseDir, _CompletedTracker

        self.checkpoint = checkpoint
        self.ttl = float(DEFAULT_LEASE_TTL if ttl is None else ttl)
        self._leases = LeaseDir(checkpoint.run_dir, ttl=self.ttl)
        self._tracker = _CompletedTracker(checkpoint)

    def completed_keys(self) -> set[str]:
        return self._tracker.refresh()

    def claim(self, unit_key: str, worker: str):
        return self._leases.claim(unit_key, worker)

    def renew(self, lease):
        return self._leases.renew(lease)

    def release(self, lease) -> None:
        self._leases.release(lease)

    def record(self, lease, result) -> None:
        self.checkpoint.record(lease.unit, result, shard=lease.worker)

    def cleanup(self, completed: set[str]) -> None:
        self._leases.cleanup(completed)


# ---------------------------------------------------------------------- #
# Wire payloads (shared by client and server)
# ---------------------------------------------------------------------- #
def _require_str(data: dict, key: str) -> str:
    value = data.get(key)
    if not isinstance(value, str) or not value:
        raise ValueError(f"{key} must be a non-empty string, got {value!r}")
    return value


def _require_bool(data: dict, key: str, default: bool | None = None) -> bool:
    value = data.get(key, default)
    if not isinstance(value, bool):
        raise ValueError(f"{key} must be a boolean, got {value!r}")
    return value


def _payload_dict(data: Any, what: str) -> dict:
    if not isinstance(data, dict):
        raise ValueError(f"{what} payload must be an object, got {type(data).__name__}")
    return data


@dataclass(frozen=True)
class ClaimRequest:
    """``POST /claim`` body: one worker asking for one unit."""

    unit: str
    worker: str

    def to_dict(self) -> dict:
        return {"unit": self.unit, "worker": self.worker}

    @classmethod
    def from_dict(cls, data: Any) -> "ClaimRequest":
        data = _payload_dict(data, "claim request")
        return cls(unit=_require_str(data, "unit"), worker=_require_str(data, "worker"))


@dataclass(frozen=True)
class ClaimReply:
    """``POST /claim`` reply.

    ``granted`` carries an ownership ``token`` the worker must present on
    every later renew/release/record for this lease; ``completed`` means
    the unit is already recorded (nothing to do); a plain denial means a
    live peer holds it.
    """

    granted: bool
    token: str = ""
    ttl: float = 0.0
    reclaimed: bool = False
    completed: bool = False

    def to_dict(self) -> dict:
        return {
            "granted": self.granted,
            "token": self.token,
            "ttl": self.ttl,
            "reclaimed": self.reclaimed,
            "completed": self.completed,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "ClaimReply":
        data = _payload_dict(data, "claim reply")
        granted = _require_bool(data, "granted")
        token = data.get("token", "")
        if not isinstance(token, str) or (granted and not token):
            raise ValueError(f"token must be a string (non-empty when granted), got {token!r}")
        try:
            ttl = float(data.get("ttl", 0.0))
        except (TypeError, ValueError):
            raise ValueError(f"ttl must be a number, got {data.get('ttl')!r}") from None
        if granted and ttl <= 0:
            raise ValueError(f"granted claim must carry a positive ttl, got {ttl}")
        return cls(
            granted=granted,
            token=token,
            ttl=ttl,
            reclaimed=_require_bool(data, "reclaimed", default=False),
            completed=_require_bool(data, "completed", default=False),
        )


@dataclass(frozen=True)
class LeaseRequest:
    """``POST /renew`` and ``POST /release`` body: a held lease, proven
    by its ownership token."""

    unit: str
    worker: str
    token: str

    def to_dict(self) -> dict:
        return {"unit": self.unit, "worker": self.worker, "token": self.token}

    @classmethod
    def from_dict(cls, data: Any) -> "LeaseRequest":
        data = _payload_dict(data, "lease request")
        return cls(
            unit=_require_str(data, "unit"),
            worker=_require_str(data, "worker"),
            token=_require_str(data, "token"),
        )


@dataclass(frozen=True)
class RecordRequest:
    """``POST /record`` body: a finished unit's (encoded) result."""

    unit: str
    worker: str
    token: str
    result: Any

    def to_dict(self) -> dict:
        return {
            "unit": self.unit,
            "worker": self.worker,
            "token": self.token,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "RecordRequest":
        data = _payload_dict(data, "record request")
        if "result" not in data:
            raise ValueError("record request must carry a result")
        return cls(
            unit=_require_str(data, "unit"),
            worker=_require_str(data, "worker"),
            token=_require_str(data, "token"),
            result=data["result"],
        )


@dataclass(frozen=True)
class AckReply:
    """Reply to renew/release/record.

    ``ok=False`` with ``stale=True`` means the presented token no longer
    owns the lease (it expired and was re-granted); ``duplicate=True``
    on a record ack means the unit was already recorded and this result
    was dropped (first writer wins, as on the filesystem)."""

    ok: bool
    stale: bool = False
    duplicate: bool = False

    def to_dict(self) -> dict:
        return {"ok": self.ok, "stale": self.stale, "duplicate": self.duplicate}

    @classmethod
    def from_dict(cls, data: Any) -> "AckReply":
        data = _payload_dict(data, "ack reply")
        return cls(
            ok=_require_bool(data, "ok"),
            stale=_require_bool(data, "stale", default=False),
            duplicate=_require_bool(data, "duplicate", default=False),
        )


@dataclass(frozen=True)
class CoordinatorLease:
    """A claim granted by the coordinator, held client-side.

    The ``token`` is the proof of ownership: the coordinator re-grants
    an expired lease under a fresh token, so a stalled worker's renewals
    and releases are rejected instead of clobbering the new holder."""

    unit: str
    worker: str
    token: str
    ttl: float
    reclaimed: bool = False


# ---------------------------------------------------------------------- #
# HTTP transport
# ---------------------------------------------------------------------- #
class HttpWorkBackend:
    """A :class:`WorkBackend` speaking JSON to a ``repro sweep serve``
    coordinator — multi-host draining with no shared filesystem.

    Parameters
    ----------
    url:
        The coordinator's base URL (``http://host:port``).
    encode:
        Unit-result encoder applied before ``POST /record`` (the same
        codec a :class:`RunCheckpoint` would hold); ``None`` records
        results as-is (they must be JSON-serializable).
    retry_timeout:
        Seconds to keep retrying transient failures (connection refused,
        5xx, timeouts) with exponential backoff before raising
        :class:`CoordinatorError`.  This is what lets workers ride out a
        coordinator kill + restart without losing their place.
    """

    recheck_after_claim = False

    def __init__(
        self,
        url: str,
        *,
        encode: Any | None = None,
        retry_timeout: float | None = None,
        request_timeout: float | None = None,
    ) -> None:
        self.url = url.rstrip("/")
        if not self.url.startswith(("http://", "https://")):
            raise ValueError(f"coordinator url must be http(s)://host:port, got {url!r}")
        self._encode = encode
        self.retry_timeout = float(
            DEFAULT_RETRY_TIMEOUT if retry_timeout is None else retry_timeout
        )
        self.request_timeout = float(
            DEFAULT_REQUEST_TIMEOUT if request_timeout is None else request_timeout
        )

    # ------------------------------------------------------------------ #
    def _request(self, path: str, payload: dict | None = None) -> Any:
        """One JSON round-trip with bounded retry on transient failures."""
        data = None if payload is None else json.dumps(payload).encode()
        deadline = time.monotonic() + self.retry_timeout
        backoff = 0.05
        last: Exception | None = None
        while True:
            request = urllib.request.Request(
                self.url + path,
                data=data,
                method="GET" if data is None else "POST",
                headers={} if data is None else {"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=self.request_timeout) as resp:
                    body = resp.read()
                try:
                    return json.loads(body)
                except json.JSONDecodeError as exc:
                    raise CoordinatorProtocolError(
                        f"coordinator at {self.url} returned non-JSON for {path}: {exc}"
                    ) from None
            except urllib.error.HTTPError as exc:
                if 400 <= exc.code < 500:
                    raise CoordinatorProtocolError(
                        f"coordinator rejected {path}: {_error_detail(exc)}"
                    ) from None
                last = exc  # 5xx: the server is unhappy, not us — retry
            except (
                urllib.error.URLError,
                http.client.HTTPException,
                ConnectionError,
                TimeoutError,
                OSError,
            ) as exc:
                last = exc  # unreachable/mid-restart — retry
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CoordinatorError(
                    f"coordinator at {self.url} unreachable after "
                    f"{self.retry_timeout:.0f}s of retries (last error: {last})"
                )
            time.sleep(min(backoff, remaining))
            backoff = min(backoff * 2.0, 1.0)

    # ------------------------------------------------------------------ #
    def completed_keys(self) -> set[str]:
        reply = self._request("/completed")
        keys = reply.get("keys") if isinstance(reply, dict) else None
        if not isinstance(keys, list):
            raise CoordinatorProtocolError(
                f"coordinator /completed reply malformed: {reply!r}"
            )
        return set(keys)

    def claim(self, unit_key: str, worker: str) -> CoordinatorLease | None:
        payload = ClaimRequest(unit=unit_key, worker=worker).to_dict()
        reply = ClaimReply.from_dict(self._request("/claim", payload))
        if not reply.granted:
            return None
        return CoordinatorLease(
            unit=unit_key,
            worker=worker,
            token=reply.token,
            ttl=reply.ttl,
            reclaimed=reply.reclaimed,
        )

    def renew(self, lease: CoordinatorLease) -> CoordinatorLease | None:
        payload = LeaseRequest(unit=lease.unit, worker=lease.worker, token=lease.token)
        ack = AckReply.from_dict(self._request("/renew", payload.to_dict()))
        return lease if ack.ok else None

    def release(self, lease: CoordinatorLease) -> None:
        payload = LeaseRequest(unit=lease.unit, worker=lease.worker, token=lease.token)
        self._request("/release", payload.to_dict())  # stale release: benign no-op

    def record(self, lease: CoordinatorLease, result: Any) -> None:
        encoded = result if self._encode is None else self._encode(result)
        payload = RecordRequest(
            unit=lease.unit, worker=lease.worker, token=lease.token, result=encoded
        )
        ack = AckReply.from_dict(self._request("/record", payload.to_dict()))
        if not ack.ok:
            raise CoordinatorProtocolError(
                f"coordinator refused to record unit {lease.unit!r} "
                f"(stale={ack.stale})"
            )

    def cleanup(self, completed: set[str]) -> None:
        """No-op: the coordinator sweeps its own lease table."""

    # ------------------------------------------------------------------ #
    # Read-side endpoints (status, manifests, final results)
    # ------------------------------------------------------------------ #
    def manifest(self) -> dict:
        reply = self._request("/manifest")
        if not isinstance(reply, dict):
            raise CoordinatorProtocolError(f"coordinator /manifest reply malformed: {reply!r}")
        return reply

    def status(self) -> dict:
        reply = self._request("/status")
        if not isinstance(reply, dict):
            raise CoordinatorProtocolError(f"coordinator /status reply malformed: {reply!r}")
        return reply

    def results(self) -> dict[str, Any]:
        reply = self._request("/results")
        results = reply.get("results") if isinstance(reply, dict) else None
        if not isinstance(results, dict):
            raise CoordinatorProtocolError(f"coordinator /results reply malformed: {reply!r}")
        return results


def _error_detail(exc: urllib.error.HTTPError) -> str:
    """The coordinator's ``{"error": ...}`` detail, or the bare status."""
    try:
        body = json.loads(exc.read())
        if isinstance(body, dict) and isinstance(body.get("error"), str):
            return f"{exc.code} {body['error']}"
    except (OSError, ValueError):
        pass
    return f"{exc.code} {exc.reason}"
