"""Tables I & II: the scheduler and dataset inventories.

Table I lists the 17 schedulers implemented in SAGA with references;
Table II lists the 16 dataset generators.  Both are regenerated from the
live registries, so they stay true to what the package actually ships.
"""

from __future__ import annotations

from repro.benchmarking.report import format_table
from repro.core.scheduler import scheduler_registry
from repro.datasets import PAPER_DATASETS, list_datasets
from repro.datasets.workflows import list_recipes

__all__ = ["table1_schedulers", "table2_datasets", "run"]


def table1_schedulers() -> str:
    """Table I: every registered scheduler with its metadata."""
    rows = []
    for name in sorted(scheduler_registry()):
        cls = scheduler_registry()[name]
        info = cls.info
        rows.append(
            (
                name,
                info.full_name if info else "",
                info.reference if info else "",
                info.complexity if info else "",
                info.machine_model if info else "",
                "yes" if (info and info.exponential) else "no",
            )
        )
    return "Table I — schedulers implemented\n\n" + format_table(
        ["abbrev", "algorithm", "reference", "complexity", "model", "exponential"], rows
    )


#: Table II's network column per dataset.
_NETWORK_KIND = {
    **{name: "randomly weighted (3-5 nodes)" for name in ("in_trees", "out_trees", "chains")},
    **{name: "Chameleon-cloud inspired" for name in (
        "blast", "bwa", "cycles", "epigenomics", "genome",
        "montage", "seismology", "soykb", "srasearch",
    )},
    **{name: "Edge/Fog/Cloud" for name in ("etl", "predict", "stats", "train")},
}

_GRAPH_KIND = {
    "in_trees": "in-trees",
    "out_trees": "out-trees",
    "chains": "parallel chains",
    "etl": "IoT ETL application",
    "predict": "IoT PREDICT application",
    "stats": "IoT STATS application",
    "train": "IoT TRAIN application",
}


def table2_datasets() -> str:
    """Table II: every registered dataset generator."""
    rows = []
    for name in PAPER_DATASETS:
        graph = _GRAPH_KIND.get(
            name, f"{name} workflows" if name in list_recipes() else name
        )
        rows.append((name, graph, _NETWORK_KIND[name]))
    return "Table II — datasets available\n\n" + format_table(
        ["name", "task graph", "network"], rows
    )


def run() -> str:
    """Both tables, plus registry consistency checks."""
    registered = set(list_datasets())
    missing = set(PAPER_DATASETS) - registered
    if missing:
        raise RuntimeError(f"datasets missing from registry: {sorted(missing)}")
    return table1_schedulers() + "\n\n" + table2_datasets()


if __name__ == "__main__":  # pragma: no cover
    print(run())
