"""Experiment scaling knobs.

Paper-scale experiments (1000-instance datasets, 459-iteration annealing
runs, all 210 scheduler pairs) take hours.  Every experiment driver in
this package therefore has two scales:

* the **default** scale, sized so the whole benchmark suite regenerates
  every figure in minutes on a laptop, and
* the **full** (paper) scale, enabled by setting ``REPRO_FULL=1`` in the
  environment or passing ``full=True`` to the drivers.

The claim being reproduced is shape-level (who wins, by roughly what
factor), which the reduced scale already exhibits; the full scale exists
to match the paper's experimental protocol exactly.
"""

from __future__ import annotations

import os
from typing import TypeVar

from repro.pisa.annealing import AnnealingConfig
from repro.pisa.pisa import PISAConfig

__all__ = [
    "is_full_scale",
    "pick",
    "pisa_config",
    "instances_per_dataset",
    "resolve_run_dir",
]

T = TypeVar("T")


def is_full_scale(full: bool | None = None) -> bool:
    """Resolve the scale flag: explicit argument wins, then $REPRO_FULL."""
    if full is not None:
        return full
    return os.environ.get("REPRO_FULL", "") == "1"


def pick(small: T, paper: T, full: bool | None = None) -> T:
    """Pick the small or paper-scale value of a parameter."""
    return paper if is_full_scale(full) else small


def pisa_config(full: bool | None = None) -> PISAConfig:
    """PISA parameters: the paper's (Tmax=10, Tmin=0.1, Imax=1000,
    alpha=0.99, 5 restarts) at full scale, a shortened schedule otherwise."""
    if is_full_scale(full):
        return PISAConfig(annealing=AnnealingConfig(), restarts=5)
    return PISAConfig(
        annealing=AnnealingConfig(t_max=10.0, t_min=0.1, max_iterations=80, alpha=0.945),
        restarts=2,
    )


def instances_per_dataset(name: str, full: bool | None = None) -> int:
    """Dataset sizes: Table II's 1000/100 at full scale, 10 otherwise."""
    if is_full_scale(full):
        return 100 if _is_workflow(name) else 1000
    return 10


def _is_workflow(name: str) -> bool:
    from repro.datasets.workflows import list_recipes

    return name in list_recipes()


def resolve_run_dir(run_dir, checkpoint_dir, caller: str):
    """Apply the ``checkpoint_dir`` -> ``run_dir`` deprecation shim.

    Every driver names its checkpoint directory ``run_dir`` now; the old
    ``checkpoint_dir`` spelling warns once per call site and keeps
    working until removed.
    """
    if checkpoint_dir is not None:
        import warnings

        warnings.warn(
            f"{caller}(checkpoint_dir=...) is deprecated; use run_dir=... "
            "(the name every other driver uses)",
            DeprecationWarning,
            stacklevel=3,
        )
        if run_dir is None:
            run_dir = checkpoint_dir
    return run_dir
