"""Fig. 1: the paper's example problem instance and schedule.

The instance is given exactly in the figure: a 4-task diamond task graph
(t1 -> {t2, t3} -> t4) and a 3-node network.  The paper shows one valid
schedule as a Gantt chart; we reproduce the instance, run HEFT on it, and
render the schedule the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarking.gantt import render_gantt
from repro.benchmarking.report import format_table
from repro.core.instance import ProblemInstance
from repro.core.network import Network
from repro.core.schedule import Schedule
from repro.core.scheduler import get_scheduler
from repro.core.task_graph import TaskGraph

__all__ = ["fig1_instance", "Fig1Result", "run"]


def fig1_instance() -> ProblemInstance:
    """The exact instance of Fig. 1 (weights read off the figure)."""
    task_graph = TaskGraph.from_dicts(
        {"t1": 1.7, "t2": 1.2, "t3": 2.2, "t4": 0.8},
        {
            ("t1", "t2"): 0.6,
            ("t1", "t3"): 0.5,
            ("t2", "t4"): 1.3,
            ("t3", "t4"): 1.6,
        },
    )
    network = Network.from_speeds(
        {"v1": 1.0, "v2": 1.2, "v3": 1.5},
        strengths={
            ("v1", "v2"): 0.5,
            ("v1", "v3"): 1.0,
            ("v2", "v3"): 1.2,
        },
    )
    return ProblemInstance(network, task_graph, name="fig1")


@dataclass
class Fig1Result:
    instance: ProblemInstance
    schedules: dict[str, Schedule]
    report: str


def run(schedulers: tuple[str, ...] = ("HEFT", "CPoP", "FastestNode")) -> Fig1Result:
    """Schedule the Fig. 1 instance and render Gantt charts."""
    instance = fig1_instance()
    schedules = {name: get_scheduler(name).schedule(instance) for name in schedulers}
    for sched in schedules.values():
        sched.validate(instance)

    lines = ["Fig. 1 — example problem instance and schedules", ""]
    lines.append(
        format_table(
            ["scheduler", "makespan"],
            [(name, f"{s.makespan:.4f}") for name, s in schedules.items()],
        )
    )
    for name, sched in schedules.items():
        lines += ["", f"{name} schedule (makespan {sched.makespan:.4f}):"]
        lines.append(render_gantt(sched, node_order=list(instance.network.nodes)))
    return Fig1Result(instance=instance, schedules=schedules, report="\n".join(lines))


if __name__ == "__main__":  # pragma: no cover
    print(run().report)
