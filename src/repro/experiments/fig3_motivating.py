"""Fig. 3: the motivating example — a small network change flips HEFT vs CPoP.

The paper's illustration: a fork-join task graph (Fig. 3a) scheduled on a
homogeneous 3-node network (3b) and on the same network with node 3's
links weakened to 0.5 (3c).  The published Gantt charts show HEFT doing
worse than CPoP after the change.

Exact Gantt charts depend on tie-breaking conventions the paper does not
specify (the instance is highly symmetric, so EFT ties abound); our
faithful implementations produce equal makespans on this exact instance.
The *claim* the figure illustrates — parallel-chains instances exist where
CPoP beats HEFT, despite HEFT looking better on the chains dataset — is
checked directly: we scan randomly generated chains instances (the same
generator as Table II) and report the worst HEFT/CPoP ratio found, which
exceeds 1 with a handful of samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.benchmarking.gantt import render_gantt
from repro.benchmarking.metrics import makespan_ratio
from repro.benchmarking.report import format_table
from repro.core.instance import ProblemInstance
from repro.core.network import Network
from repro.core.scheduler import get_scheduler
from repro.core.task_graph import TaskGraph
from repro.datasets.random_graphs import parallel_chains_task_graph, random_network
from repro.experiments.config import pick
from repro.utils.rng import as_generator

__all__ = ["fig3_task_graph", "fig3_networks", "Fig3Result", "run"]


def fig3_task_graph() -> TaskGraph:
    """The exact Fig. 3a fork-join: 1 -> {2,3,4} -> 5, all costs 3."""
    return TaskGraph.from_dicts(
        {"1": 3.0, "2": 3.0, "3": 3.0, "4": 3.0, "5": 3.0},
        {
            ("1", "2"): 2.0,
            ("1", "3"): 2.0,
            ("1", "4"): 2.0,
            ("2", "5"): 3.0,
            ("3", "5"): 3.0,
            ("4", "5"): 3.0,
        },
    )


def fig3_networks() -> tuple[Network, Network]:
    """(original, modified): node 3's links weakened from 1 to 0.5."""
    original = Network.from_speeds(
        {"1": 1.0, "2": 1.0, "3": 1.0},
        strengths={("1", "2"): 1.0, ("1", "3"): 1.0, ("2", "3"): 1.0},
    )
    modified = Network.from_speeds(
        {"1": 1.0, "2": 1.0, "3": 1.0},
        strengths={("1", "2"): 1.0, ("1", "3"): 0.5, ("2", "3"): 0.5},
    )
    return original, modified


@dataclass
class Fig3Result:
    makespans: dict[str, dict[str, float]]  # network label -> scheduler -> makespan
    flip_ratio: float  # worst HEFT/CPoP ratio over sampled chains instances
    flip_instance: ProblemInstance | None
    report: str = field(default="")


def run(num_samples: int | None = None, rng: int = 0, full: bool | None = None) -> Fig3Result:
    """Replay the exact Fig. 3 instance and find a chains-family flip."""
    heft, cpop = get_scheduler("HEFT"), get_scheduler("CPoP")
    tg = fig3_task_graph()
    original, modified = fig3_networks()

    makespans: dict[str, dict[str, float]] = {}
    lines = ["Fig. 3 — HEFT vs CPoP under a small network modification", ""]
    for label, net in (("original", original), ("modified", modified)):
        inst = ProblemInstance(net, tg, name=f"fig3-{label}")
        makespans[label] = {
            "HEFT": heft.schedule(inst).makespan,
            "CPoP": cpop.schedule(inst).makespan,
        }
    lines.append(
        format_table(
            ["network", "HEFT", "CPoP"],
            [
                (label, f"{ms['HEFT']:.3f}", f"{ms['CPoP']:.3f}")
                for label, ms in makespans.items()
            ],
        )
    )
    lines += [
        "",
        "(Exact Gantt layouts are tie-break dependent; the substantive claim",
        " is checked below on the chains dataset family.)",
        "",
    ]

    # Scan chains-family instances for ones where HEFT loses to CPoP.
    n = num_samples if num_samples is not None else pick(60, 1000, full)
    gen = as_generator(rng)
    worst_ratio, worst_instance = 0.0, None
    for i in range(n):
        inst = ProblemInstance(
            random_network(gen), parallel_chains_task_graph(gen), name=f"chains[{i}]"
        )
        ratio = makespan_ratio(heft.schedule(inst).makespan, cpop.schedule(inst).makespan)
        if ratio > worst_ratio:
            worst_ratio, worst_instance = ratio, inst
    lines.append(
        f"worst HEFT/CPoP makespan ratio over {n} chains instances: {worst_ratio:.3f}"
    )
    if worst_instance is not None:
        h = heft.schedule(worst_instance)
        c = cpop.schedule(worst_instance)
        lines += [
            "",
            f"HEFT on the flip instance (makespan {h.makespan:.3f}):",
            render_gantt(h),
            "",
            f"CPoP on the flip instance (makespan {c.makespan:.3f}):",
            render_gantt(c),
        ]
    return Fig3Result(
        makespans=makespans,
        flip_ratio=worst_ratio,
        flip_instance=worst_instance,
        report="\n".join(lines),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().report)
