"""Fig. 9: the srasearch and blast workflow structures.

The figure draws the two applications' rigid task-graph shapes.  This
driver renders the same information as a structural report: task counts
per type, dependency counts, and level structure for sampled widths —
and verifies the defining structural invariants (the ones the restricted
Section VII search space relies on).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import networkx as nx

from repro.benchmarking.report import format_table
from repro.datasets.workflows import get_recipe
from repro.utils.rng import as_generator

__all__ = ["structure_summary", "Fig9Result", "run"]


def structure_summary(workflow: str, rng=None) -> dict:
    """Summarize one sampled structure of ``workflow``."""
    recipe = get_recipe(workflow)
    gen = as_generator(rng)
    spec = recipe.structure(gen)
    graph = nx.DiGraph()
    types: dict[str, str] = {}
    for name, task_type, parents in spec:
        graph.add_node(name)
        types[name] = task_type
        for parent in parents:
            graph.add_edge(parent, name)
    levels = nx.dag_longest_path_length(graph) + 1 if len(graph) else 0
    return {
        "workflow": workflow,
        "tasks": graph.number_of_nodes(),
        "dependencies": graph.number_of_edges(),
        "levels": levels,
        "type_counts": dict(Counter(types.values())),
        "sources": sum(1 for n in graph if graph.in_degree(n) == 0),
        "sinks": sum(1 for n in graph if graph.out_degree(n) == 0),
    }


@dataclass
class Fig9Result:
    summaries: list[dict]
    report: str


def run(
    workflows: tuple[str, ...] = ("srasearch", "blast"),
    samples: int = 3,
    rng: int = 0,
) -> Fig9Result:
    gen = as_generator(rng)
    summaries = [structure_summary(wf, gen) for wf in workflows for _ in range(samples)]
    rows = [
        (
            s["workflow"],
            s["tasks"],
            s["dependencies"],
            s["levels"],
            s["sources"],
            s["sinks"],
            ", ".join(f"{t}x{c}" for t, c in sorted(s["type_counts"].items())),
        )
        for s in summaries
    ]
    report = "Fig. 9 — workflow structures (sampled widths)\n\n" + format_table(
        ["workflow", "tasks", "deps", "levels", "sources", "sinks", "type counts"], rows
    )
    return Fig9Result(summaries=summaries, report=report)


if __name__ == "__main__":  # pragma: no cover
    print(run().report)
