"""Experiment drivers: one module per table/figure of the paper.

Every driver exposes ``run(...)`` returning a result object with a
``report`` string, runs at a reduced scale by default, and switches to
the paper's exact protocol with ``REPRO_FULL=1`` (see
:mod:`repro.experiments.config`).  The pytest-benchmark harness in
``benchmarks/`` calls these same drivers.

| Paper artifact | Module |
|----------------|--------|
| Table I / II   | :mod:`repro.experiments.tables` |
| Fig. 1         | :mod:`repro.experiments.fig1_example` |
| Fig. 2         | :mod:`repro.experiments.fig2_benchmarking` |
| Fig. 3         | :mod:`repro.experiments.fig3_motivating` |
| Fig. 4         | :mod:`repro.experiments.fig4_pisa_heatmap` |
| Figs. 5/6      | :mod:`repro.experiments.fig5_fig6_case_study` |
| Figs. 7/8      | :mod:`repro.experiments.fig7_fig8_families` |
| Fig. 9         | :mod:`repro.experiments.fig9_structures` |
| Figs. 10-19    | :mod:`repro.experiments.fig10_19_app_specific` |
"""

from repro.experiments import (
    config,
    fig1_example,
    fig2_benchmarking,
    fig3_motivating,
    fig4_pisa_heatmap,
    fig5_fig6_case_study,
    fig7_fig8_families,
    fig9_structures,
    fig10_19_app_specific,
    tables,
)

__all__ = [
    "config",
    "fig1_example",
    "fig2_benchmarking",
    "fig3_motivating",
    "fig4_pisa_heatmap",
    "fig5_fig6_case_study",
    "fig7_fig8_families",
    "fig9_structures",
    "fig10_19_app_specific",
    "tables",
]
