"""Fig. 4: the PISA pairwise heatmap over all 15 schedulers.

For every ordered pair (base scheduler B row, target scheduler A column)
PISA searches for the instance maximizing A's makespan ratio over B; the
cell shows the best ratio found (clamped at "> 5.0" / "> 1000" like the
paper).  The extra "Worst" row shows, per target, the maximum over all
baselines — the paper's headline lower bounds ("for every scheduler, an
instance exists on which it is at least 2x worse than some other
scheduler; for 10 of 15, at least 5x").

The experiment is the named sweep spec :func:`repro.sweeps.fig4_spec`
executed by :func:`repro.sweeps.run_sweep`; this module only renders the
matrix.  ``repro sweep show fig4`` dumps the same definition as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.benchmarking.heatmap import render_matrix
from repro.experiments.config import resolve_run_dir
from repro.pisa.pisa import PairwiseResult, PISAConfig
from repro.sweeps import fig4_spec, run_sweep
from repro.utils.rng import as_generator

__all__ = ["Fig4Result", "run"]


@dataclass
class Fig4Result:
    pairwise: PairwiseResult
    report: str

    def worst_case(self, target: str) -> float:
        return self.pairwise.worst_case_row()[target]


def run(
    schedulers: list[str] | None = None,
    config: PISAConfig | None = None,
    rng: int = 0,
    full: bool | None = None,
    progress=None,
    jobs: int = 1,
    run_dir=None,
    resume: bool = False,
    checkpoint_dir=None,
) -> Fig4Result:
    """Regenerate the Fig. 4 matrix (reduced annealing schedule by default).

    ``jobs`` fans the (pair, restart) work units over worker processes;
    ``run_dir``/``resume`` stream completed units to a run directory so
    an interrupted sweep continues where it stopped (see
    :func:`repro.sweeps.run_sweep`).  ``checkpoint_dir`` is a deprecated
    alias for ``run_dir``.
    """
    run_dir = resolve_run_dir(run_dir, checkpoint_dir, "fig4_pisa_heatmap.run")
    # Generator rngs and None (fresh OS entropy, interactive use) ride
    # through as a runner override; integer seeds live in the spec so the
    # run-dir manifest records them.
    if rng is None or isinstance(rng, np.random.Generator):
        seed, rng_override = 0, as_generator(rng)
    else:
        seed, rng_override = rng, None
    spec = fig4_spec(schedulers=schedulers, config=config, seed=seed, full=full)
    result = run_sweep(
        spec, jobs=jobs, run_dir=run_dir, resume=resume, rng=rng_override, progress=progress
    )
    pairwise = result.pairwise

    # Row = base scheduler, column = target scheduler, matching Fig. 4.
    matrix_schedulers = pairwise.schedulers
    values = {
        (baseline, target): res.best_ratio
        for (target, baseline), res in pairwise.results.items()
    }
    worst = pairwise.worst_case_row()
    rows = ["Worst"] + matrix_schedulers
    for target, ratio in worst.items():
        values[("Worst", target)] = ratio
    report = render_matrix(
        values,
        row_labels=rows,
        col_labels=matrix_schedulers,
        title="Fig. 4 — PISA pairwise makespan ratios (row = base, column = target)",
        row_header="base",
    )
    return Fig4Result(pairwise=pairwise, report=report)


if __name__ == "__main__":  # pragma: no cover
    result = run(progress=lambda t, b, r: print(f"  {t} vs {b}: {r:.2f}", flush=True))
    print(result.report)
