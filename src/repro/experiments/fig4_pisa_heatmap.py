"""Fig. 4: the PISA pairwise heatmap over all 15 schedulers.

For every ordered pair (base scheduler B row, target scheduler A column)
PISA searches for the instance maximizing A's makespan ratio over B; the
cell shows the best ratio found (clamped at "> 5.0" / "> 1000" like the
paper).  The extra "Worst" row shows, per target, the maximum over all
baselines — the paper's headline lower bounds ("for every scheduler, an
instance exists on which it is at least 2x worse than some other
scheduler; for 10 of 15, at least 5x").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarking.heatmap import render_matrix
from repro.experiments.config import pisa_config
from repro.pisa.pisa import PairwiseResult, PISAConfig, pairwise_comparison
from repro.schedulers import PAPER_SCHEDULERS
__all__ = ["Fig4Result", "run"]


@dataclass
class Fig4Result:
    pairwise: PairwiseResult
    report: str

    def worst_case(self, target: str) -> float:
        return self.pairwise.worst_case_row()[target]


def run(
    schedulers: list[str] | None = None,
    config: PISAConfig | None = None,
    rng: int = 0,
    full: bool | None = None,
    progress=None,
    jobs: int = 1,
    checkpoint_dir=None,
    resume: bool = False,
) -> Fig4Result:
    """Regenerate the Fig. 4 matrix (reduced annealing schedule by default).

    ``jobs`` fans the (pair, restart) work units over worker processes;
    ``checkpoint_dir``/``resume`` stream completed units to a run
    directory so an interrupted sweep continues where it stopped (see
    :func:`repro.pisa.pisa.pairwise_comparison`).
    """
    schedulers = list(schedulers) if schedulers is not None else list(PAPER_SCHEDULERS)
    config = config or pisa_config(full)
    # Pass the seed through un-coerced: integer seeds are recorded in the
    # checkpoint manifest, so a resumed run can be validated against it.
    pairwise = pairwise_comparison(
        schedulers,
        config=config,
        rng=rng,
        progress=progress,
        jobs=jobs,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )

    # Row = base scheduler, column = target scheduler, matching Fig. 4.
    values = {
        (baseline, target): result.best_ratio
        for (target, baseline), result in pairwise.results.items()
    }
    worst = pairwise.worst_case_row()
    rows = ["Worst"] + schedulers
    for target, ratio in worst.items():
        values[("Worst", target)] = ratio
    report = render_matrix(
        values,
        row_labels=rows,
        col_labels=schedulers,
        title="Fig. 4 — PISA pairwise makespan ratios (row = base, column = target)",
        row_header="base",
    )
    return Fig4Result(pairwise=pairwise, report=report)


if __name__ == "__main__":  # pragma: no cover
    result = run(progress=lambda t, b, r: print(f"  {t} vs {b}: {r:.2f}", flush=True))
    print(result.report)
