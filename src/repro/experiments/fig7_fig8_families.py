"""Figs. 7 & 8: hand-crafted instance families generalizing the case study.

Section VI-B distills the PISA findings into two parametric families
(registered as the ``fig7``/``fig8`` instance families in
:mod:`repro.datasets.families`):

* **Fig. 7** (HEFT loses): a 4-task fork-join with one very expensive
  initial communication edge on a homogeneous network.
* **Fig. 8** (CPoP loses): a wide fork-join on a 4-node network whose
  fastest node has a weak link to the second-fastest.

Each family is sampled 1000 times (paper scale) and the HEFT/CPoP
makespan distributions are compared — Fig. 7 should show HEFT markedly
worse, Fig. 8 CPoP markedly worse.  The two samples are benchmark-mode
sweeps (:func:`repro.sweeps.fig7_spec` / :func:`~repro.sweeps.fig8_spec`)
executed by :func:`repro.sweeps.run_sweep`; with a ``run_dir`` each
family checkpoints its per-instance units to ``run_dir/<family>`` so an
interrupted run resumes instead of restarting.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.benchmarking.report import boxplot_row, format_table
from repro.datasets.families import fig7_instance, fig8_instance  # noqa: F401 (re-export)
from repro.experiments.config import pick
from repro.runtime.checkpoint import RunCheckpoint
from repro.sweeps import fig7_spec, fig8_spec, run_sweep, sample_units
from repro.utils.rng import as_generator

__all__ = ["fig7_instance", "fig8_instance", "FamilyResult", "run_family", "run"]


@dataclass
class FamilyResult:
    name: str
    makespans: dict[str, np.ndarray]  # scheduler -> per-instance makespans

    def mean(self, scheduler: str) -> float:
        return float(self.makespans[scheduler].mean())

    def median(self, scheduler: str) -> float:
        return float(np.median(self.makespans[scheduler]))


def run_family(
    name: str,
    instance_factory,
    num_instances: int,
    rng,
    schedulers: tuple[str, ...] = ("CPoP", "HEFT"),
    jobs: int = 1,
    checkpoint: RunCheckpoint | None = None,
) -> FamilyResult:
    """Sample a family and collect per-scheduler makespans.

    Each sample is one work unit on its own spawned RNG stream, so the
    distributions are identical at any ``jobs`` (and across an
    interrupt/resume boundary when a ``checkpoint`` is given).
    """
    rows = sample_units(
        name,
        schedulers,
        factory=instance_factory,
        num_instances=num_instances,
        rng=rng,
        jobs=jobs,
        checkpoint=checkpoint,
    )
    return FamilyResult(
        name=name,
        makespans={
            s: np.asarray([row["makespans"][s] for row in rows]) for s in schedulers
        },
    )


@dataclass
class Fig78Result:
    fig7: FamilyResult
    fig8: FamilyResult
    report: str


def run(
    num_instances: int | None = None,
    rng: int = 0,
    full: bool | None = None,
    jobs: int = 1,
    run_dir=None,
    resume: bool = False,
) -> Fig78Result:
    """Regenerate Figs. 7/8.

    With a ``run_dir``, each family's per-instance units checkpoint to
    ``run_dir/fig7`` and ``run_dir/fig8``; ``resume=True`` skips units
    already recorded there.
    """
    n = num_instances if num_instances is not None else pick(100, 1000, full)
    # One generator threads both families (fig8's streams follow fig7's in
    # the spawn order), preserving the historical RNG streams.
    gen = as_generator(rng)
    seed = rng if isinstance(rng, (int, np.integer)) else 0
    results = {}
    for spec in (fig7_spec(num_instances=n, seed=seed), fig8_spec(num_instances=n, seed=seed)):
        family_dir = Path(run_dir) / spec.name if run_dir is not None else None
        sweep = run_sweep(spec, jobs=jobs, run_dir=family_dir, resume=resume, rng=gen)
        results[spec.name] = FamilyResult(name=spec.name, makespans=sweep.makespans)
    fig7, fig8 = results["fig7"], results["fig8"]

    lines = [f"Figs. 7/8 — HEFT vs CPoP on crafted instance families ({n} samples each)", ""]
    rows = []
    for fam, expected in ((fig7, "HEFT worse"), (fig8, "CPoP worse")):
        rows.append(
            (
                fam.name,
                f"{fam.mean('CPoP'):.2f}",
                f"{fam.mean('HEFT'):.2f}",
                f"{fam.mean('HEFT') / fam.mean('CPoP'):.2f}",
                expected,
            )
        )
    lines.append(
        format_table(
            ["family", "CPoP mean", "HEFT mean", "HEFT/CPoP", "paper expectation"], rows
        )
    )
    for fam in (fig7, fig8):
        lines.append("")
        lines.append(f"{fam.name} makespan distributions:")
        for s in fam.makespans:
            lines.append(boxplot_row(s, fam.makespans[s].tolist()))
    return Fig78Result(fig7=fig7, fig8=fig8, report="\n".join(lines))


if __name__ == "__main__":  # pragma: no cover
    print(run().report)
