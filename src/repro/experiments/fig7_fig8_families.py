"""Figs. 7 & 8: hand-crafted instance families generalizing the case study.

Section VI-B distills the PISA findings into two parametric families:

* **Fig. 7** (HEFT loses): a 4-task fork-join A -> {B, C} -> D where one
  branch has a very expensive *initial* communication.  Tasks A, D cost 1;
  B, C ~ clipped N(10, 10/3, min 0); dependencies A->B, B->D, C->D cost 1
  and A->C ~ clipped N(100, 100/3, min 0), on a homogeneous network.
  (The figure labels A->C as the expensive edge; the body text says C->D —
  we follow the figure, which matches the stated intuition of a high
  *initial* communication cost.  EXPERIMENTS.md records the discrepancy.)
* **Fig. 8** (CPoP loses): a wide fork-join A -> B..J -> K (9 inner tasks)
  with cheap fork edges ~N(1, 1/3) and expensive join edges ~N(10, 10/3),
  on a 4-node network whose fastest node (speed 3, others ~N(1, 1/3)) has
  a *weak* link ~N(1, 1/3) to the second-fastest node while all other
  links are strong ~N(10, 5/3).

Each family is sampled 1000 times (paper scale) and the HEFT/CPoP
makespan distributions are compared — Fig. 7 should show HEFT markedly
worse, Fig. 8 CPoP markedly worse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.benchmarking.report import boxplot_row, format_table
from repro.core.instance import ProblemInstance
from repro.core.network import Network
from repro.core.scheduler import get_scheduler
from repro.core.task_graph import TaskGraph
from repro.experiments.config import pick
from repro.runtime.executor import run_units
from repro.runtime.units import WorkUnit
from repro.utils.distributions import clipped_gaussian
from repro.utils.rng import as_generator, spawn

__all__ = ["fig7_instance", "fig8_instance", "FamilyResult", "run_family", "run"]

#: Tiny positive floor for sampled node speeds (clip floor is nominally 0).
_MIN_SPEED = 1e-6


def fig7_instance(rng=None) -> ProblemInstance:
    """One sample of the Fig. 7 family (HEFT-adversarial fork-join)."""
    gen = as_generator(rng)
    b = clipped_gaussian(gen, 10.0, 10.0 / 3.0, low=0.0)
    c = clipped_gaussian(gen, 10.0, 10.0 / 3.0, low=0.0)
    ac = clipped_gaussian(gen, 100.0, 100.0 / 3.0, low=0.0)
    tg = TaskGraph.from_dicts(
        {"A": 1.0, "B": b, "C": c, "D": 1.0},
        {("A", "B"): 1.0, ("A", "C"): ac, ("B", "D"): 1.0, ("C", "D"): 1.0},
    )
    net = Network.homogeneous(3, speed=1.0, strength=1.0)
    return ProblemInstance(net, tg, name="fig7")


def fig8_instance(rng=None, num_inner: int = 9) -> ProblemInstance:
    """One sample of the Fig. 8 family (CPoP-adversarial wide fork-join)."""
    gen = as_generator(rng)
    tg = TaskGraph()
    tg.add_task("A", clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0))
    inner = [chr(ord("B") + i) for i in range(num_inner)]  # B..J for 9
    for name in inner:
        tg.add_task(name, clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0))
    tg.add_task("K", clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0))
    for name in inner:
        tg.add_dependency("A", name, clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0))
        tg.add_dependency(name, "K", clipped_gaussian(gen, 10.0, 10.0 / 3.0, low=0.0))

    # 4 nodes: v1 fastest (speed 3); weak v1-v2 link; all other links strong.
    speeds = {"v1": 3.0}
    for i in (2, 3, 4):
        speeds[f"v{i}"] = max(clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0), _MIN_SPEED)
    net = Network()
    for name, speed in speeds.items():
        net.add_node(name, speed)
    ordered = sorted(speeds, key=lambda v: -speeds[v])
    fast_pair = {ordered[0], ordered[1]}
    names = list(speeds)
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            if {u, v} == fast_pair:
                strength = clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0)
            else:
                strength = clipped_gaussian(gen, 10.0, 5.0 / 3.0, low=0.0)
            net.set_strength(u, v, strength)
    return ProblemInstance(net, tg, name="fig8")


@dataclass
class FamilyResult:
    name: str
    makespans: dict[str, np.ndarray]  # scheduler -> per-instance makespans

    def mean(self, scheduler: str) -> float:
        return float(self.makespans[scheduler].mean())

    def median(self, scheduler: str) -> float:
        return float(np.median(self.makespans[scheduler]))


def _sample_family_unit(unit: WorkUnit) -> dict[str, float]:
    """Worker: sample one family instance, schedule it with every scheduler."""
    instance_factory, scheduler_names = unit.payload
    instance = instance_factory(unit.rng)
    return {
        name: get_scheduler(name).schedule(instance).makespan
        for name in scheduler_names
    }


def run_family(
    name: str,
    instance_factory,
    num_instances: int,
    rng,
    schedulers: tuple[str, ...] = ("CPoP", "HEFT"),
    jobs: int = 1,
) -> FamilyResult:
    """Sample a family and collect per-scheduler makespans.

    Each sample is one work unit on its own spawned RNG stream, so the
    distributions are identical at any ``jobs``.
    """
    units = [
        WorkUnit(key=f"{name}[{i}]", payload=(instance_factory, tuple(schedulers)), rng=gen)
        for i, gen in enumerate(spawn(rng, num_instances))
    ]
    results = run_units(units, _sample_family_unit, jobs=jobs)
    makespans = {
        s: [results[f"{name}[{i}]"][s] for i in range(num_instances)] for s in schedulers
    }
    return FamilyResult(
        name=name, makespans={s: np.asarray(v) for s, v in makespans.items()}
    )


@dataclass
class Fig78Result:
    fig7: FamilyResult
    fig8: FamilyResult
    report: str


def run(
    num_instances: int | None = None,
    rng: int = 0,
    full: bool | None = None,
    jobs: int = 1,
) -> Fig78Result:
    n = num_instances if num_instances is not None else pick(100, 1000, full)
    gen = as_generator(rng)
    fig7 = run_family("fig7", fig7_instance, n, gen, jobs=jobs)
    fig8 = run_family("fig8", fig8_instance, n, gen, jobs=jobs)

    lines = [f"Figs. 7/8 — HEFT vs CPoP on crafted instance families ({n} samples each)", ""]
    rows = []
    for fam, expected in ((fig7, "HEFT worse"), (fig8, "CPoP worse")):
        rows.append(
            (
                fam.name,
                f"{fam.mean('CPoP'):.2f}",
                f"{fam.mean('HEFT'):.2f}",
                f"{fam.mean('HEFT') / fam.mean('CPoP'):.2f}",
                expected,
            )
        )
    lines.append(
        format_table(
            ["family", "CPoP mean", "HEFT mean", "HEFT/CPoP", "paper expectation"], rows
        )
    )
    for fam in (fig7, fig8):
        lines.append("")
        lines.append(f"{fam.name} makespan distributions:")
        for s in fam.makespans:
            lines.append(boxplot_row(s, fam.makespans[s].tolist()))
    return Fig78Result(fig7=fig7, fig8=fig8, report="\n".join(lines))


if __name__ == "__main__":  # pragma: no cover
    print(run().report)
