"""Fig. 2: benchmarking 15 algorithms on 16 datasets.

For every dataset of Table II and every (non-exponential) scheduler of
Table I, the figure shows the distribution of makespan ratios against the
best-of-all baseline.  We regenerate the same grid; cells render as
``median~max`` gradients (see :mod:`repro.benchmarking.heatmap`).

Default scale uses 10 instances per dataset and shrinks the huge IoT
Edge/Fog/Cloud networks; ``REPRO_FULL=1`` restores Table II's 1000/100
instance counts and the 75-125-edge-node networks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarking.harness import GridResult, benchmark_grid
from repro.benchmarking.heatmap import render_benchmark_rows
from repro.datasets import PAPER_DATASETS, generate_dataset
from repro.experiments.config import instances_per_dataset, is_full_scale
from repro.schedulers import PAPER_SCHEDULERS
from repro.utils.rng import as_generator, derive_seed

__all__ = ["Fig2Result", "build_datasets", "run"]

#: Reduced Edge/Fog/Cloud tier sizes for the default scale (the scheduling
#: algorithms are O(|T| |V|)-ish per decision; 125-node networks belong to
#: the full-scale run).
SMALL_IOT_NETWORK = {"edge_range": (5, 10), "fog_range": (2, 3), "cloud_range": (1, 2)}


@dataclass
class Fig2Result:
    grid: GridResult
    report: str


def build_datasets(
    names: list[str] | None = None,
    num_instances: int | None = None,
    rng: int = 0,
    full: bool | None = None,
) -> list:
    """Generate the Fig. 2 datasets at the requested scale.

    Each dataset gets its own seed derived from ``rng`` so adding or
    reordering datasets does not perturb the others.
    """
    names = list(names) if names is not None else list(PAPER_DATASETS)
    datasets = []
    for name in names:
        n = num_instances if num_instances is not None else instances_per_dataset(name, full)
        kwargs = {}
        if name in ("etl", "predict", "stats", "train") and not is_full_scale(full):
            kwargs["network_kwargs"] = dict(SMALL_IOT_NETWORK)
        seed = derive_seed(rng, "fig2", name)
        datasets.append(generate_dataset(name, num_instances=n, rng=as_generator(seed), **kwargs))
    return datasets


def run(
    schedulers: list[str] | None = None,
    datasets: list[str] | None = None,
    num_instances: int | None = None,
    rng: int = 0,
    full: bool | None = None,
) -> Fig2Result:
    """Regenerate the Fig. 2 grid."""
    schedulers = list(schedulers) if schedulers is not None else list(PAPER_SCHEDULERS)
    built = build_datasets(datasets, num_instances=num_instances, rng=rng, full=full)
    grid = benchmark_grid(schedulers, built)
    summaries = {name: grid.results[name].summaries() for name in grid.datasets}
    report = render_benchmark_rows(
        summaries,
        row_labels=grid.datasets,
        col_labels=schedulers,
        title="Fig. 2 — makespan ratios (median~max per cell; 1.00 = best)",
        row_header="dataset",
    )
    return Fig2Result(grid=grid, report=report)


if __name__ == "__main__":  # pragma: no cover
    print(run().report)
