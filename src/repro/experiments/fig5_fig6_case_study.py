"""Figs. 5 & 6: the HEFT-vs-CPoP case study.

The paper shows two PISA-discovered 3-task instances: one where HEFT is
~1.55x worse than CPoP (Fig. 5 — CPoP keeps the critical path together,
freeing a second node for parallel work) and one where CPoP is ~2.83x
worse than HEFT (Fig. 6 — CPoP's commitment to running every critical-path
task on the fastest node forces an expensive communication).

The figures are *found* instances; the reproducible protocol is the
search itself.  This driver runs PISA in both directions with small
(3-task, 3-node) initial instances, reports the best instances with Gantt
charts for both schedulers, and summarizes the search trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarking.gantt import render_gantt
from repro.benchmarking.report import format_table
from repro.core.scheduler import get_scheduler
from repro.experiments.config import is_full_scale
from repro.pisa.annealing import AnnealingConfig
from repro.pisa.initial import random_chain_instance
from repro.pisa.pisa import PISA, PISAConfig, PISAResult
from repro.utils.rng import as_generator, derive_seed

__all__ = ["CaseStudyResult", "run_direction", "run"]


@dataclass
class CaseStudyResult:
    heft_vs_cpop: PISAResult  # Fig. 5 direction: HEFT worse than CPoP
    cpop_vs_heft: PISAResult  # Fig. 6 direction: CPoP worse than HEFT
    report: str


def _small_initial(rng):
    """3-task chains on 3-node networks, matching the figures' size."""
    return random_chain_instance(rng, min_nodes=3, max_nodes=3, min_tasks=3, max_tasks=3)


def run_direction(
    target: str,
    baseline: str,
    config: PISAConfig | None = None,
    rng=None,
) -> PISAResult:
    """One direction of the case study (e.g. target=HEFT, baseline=CPoP)."""
    pisa = PISA(target, baseline, config=config, initial_factory=_small_initial)
    return pisa.run(rng)


def _describe(result: PISAResult) -> list[str]:
    inst = result.best_instance
    target = get_scheduler(result.target)
    baseline = get_scheduler(result.baseline)
    t_sched = target.schedule(inst)
    b_sched = baseline.schedule(inst)
    lines = [
        f"{result.target} vs {result.baseline}: best ratio {result.best_ratio:.3f} "
        f"(restart ratios: {', '.join(f'{r:.2f}' for r in result.restart_ratios)})",
        "",
        "task costs: "
        + ", ".join(f"{t}={inst.task_graph.cost(t):.3f}" for t in inst.task_graph.tasks),
        "dependencies: "
        + (
            ", ".join(
                f"{u}->{v}={inst.task_graph.data_size(u, v):.3f}"
                for u, v in inst.task_graph.dependencies
            )
            or "(none)"
        ),
        "node speeds: "
        + ", ".join(f"{v}={inst.network.speed(v):.3f}" for v in inst.network.nodes),
        "link strengths: "
        + ", ".join(
            f"{u}-{v}={inst.network.strength(u, v):.3f}" for u, v in inst.network.links
        ),
        "",
        f"{result.target} schedule (makespan {t_sched.makespan:.3f}):",
        render_gantt(t_sched, node_order=list(inst.network.nodes)),
        "",
        f"{result.baseline} schedule (makespan {b_sched.makespan:.3f}):",
        render_gantt(b_sched, node_order=list(inst.network.nodes)),
    ]
    return lines


def _default_config(full: bool | None) -> PISAConfig:
    """The case study is only two pairs, so even the reduced scale can
    afford a meatier schedule than the 210-pair Fig. 4 default.  This is
    the trajectory experiment, so it opts into the full per-iteration
    annealing history (work units default to history-off)."""
    if is_full_scale(full):
        return PISAConfig(annealing=AnnealingConfig(), restarts=5, keep_history=True)
    return PISAConfig(
        annealing=AnnealingConfig(t_max=10.0, t_min=0.1, max_iterations=250, alpha=0.98),
        restarts=3,
        keep_history=True,
    )


def run(config: PISAConfig | None = None, rng: int = 0, full: bool | None = None) -> CaseStudyResult:
    """Run both case-study directions and render the Figs. 5/6 analogue."""
    config = config or _default_config(full)
    fig5 = run_direction(
        "HEFT", "CPoP", config=config, rng=as_generator(derive_seed(rng, "fig5"))
    )
    fig6 = run_direction(
        "CPoP", "HEFT", config=config, rng=as_generator(derive_seed(rng, "fig6"))
    )
    lines = ["Figs. 5/6 — HEFT vs CPoP case study (PISA-discovered instances)", ""]
    lines.append(
        format_table(
            ["direction", "paper ratio", "our ratio"],
            [
                ("HEFT worse than CPoP (Fig. 5)", "~1.55", f"{fig5.best_ratio:.3f}"),
                ("CPoP worse than HEFT (Fig. 6)", "~2.83", f"{fig6.best_ratio:.3f}"),
            ],
        )
    )
    lines.append("")
    lines += _describe(fig5)
    lines.append("")
    lines += _describe(fig6)
    return CaseStudyResult(heft_vs_cpop=fig5, cpop_vs_heft=fig6, report="\n".join(lines))


if __name__ == "__main__":  # pragma: no cover
    print(run().report)
