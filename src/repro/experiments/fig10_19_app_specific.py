"""Figs. 10-19: application-specific benchmarking + PISA panels.

For each scientific workflow and each CCR in {0.2, 0.5, 1, 2, 5}
(Section VII), the paper shows a panel whose top row is traditional
benchmarking (makespan-ratio gradients over an in-family dataset) and
whose remaining rows are the pairwise PISA matrix restricted to the
application's search space — schedulers {CPoP, FastestNode, HEFT, MaxMin,
MinMin, WBA}.

Figs. 10/11 are srasearch and blast; Figs. 12-19 (appendix) cover the
remaining workflows.  The driver regenerates any subset; the default
scale runs two workflows x two CCRs with a shortened annealing schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.benchmarking.harness import BenchmarkResult, benchmark_dataset
from repro.benchmarking.heatmap import format_gradient, render_matrix
from repro.experiments.config import pick, pisa_config
from repro.pisa.app_specific import PAPER_CCRS, AppSpecificSpace, app_specific_pairwise
from repro.pisa.pisa import PISAConfig, PairwiseResult
from repro.schedulers import APP_SPECIFIC_SCHEDULERS
from repro.utils.rng import as_generator, derive_seed

__all__ = ["Panel", "run_panel", "Fig1019Result", "run"]


@dataclass
class Panel:
    """One (workflow, CCR) panel: benchmark row + PISA matrix."""

    workflow: str
    ccr: float
    benchmark: BenchmarkResult
    pisa: PairwiseResult

    def render(self) -> str:
        schedulers = self.pisa.schedulers
        values = {
            (baseline, target): result.best_ratio
            for (target, baseline), result in self.pisa.results.items()
        }
        matrix = render_matrix(
            values,
            row_labels=schedulers,
            col_labels=schedulers,
            title=f"{self.workflow} (CCR = {self.ccr}) — PISA (row = base, col = target)",
            row_header="base",
        )
        bench_cells = "  ".join(
            f"{s}={format_gradient(self.benchmark.summary(s))}" for s in schedulers
        )
        return matrix + "\nBenchmarking: " + bench_cells


def run_panel(
    workflow: str,
    ccr: float,
    schedulers: list[str] | None = None,
    bench_instances: int = 10,
    config: PISAConfig | None = None,
    rng: int = 0,
    full: bool | None = None,
    progress=None,
    jobs: int = 1,
    checkpoint_dir=None,
    resume: bool = False,
) -> Panel:
    """One Figs. 10-19 panel."""
    schedulers = list(schedulers) if schedulers is not None else list(APP_SPECIFIC_SCHEDULERS)
    config = config or pisa_config(full)
    space = AppSpecificSpace(workflow, ccr=ccr, trace_seed=derive_seed(rng, workflow, "trace"))
    dataset = space.dataset(bench_instances, rng=as_generator(derive_seed(rng, workflow, ccr, "bench")))
    benchmark = benchmark_dataset(schedulers, dataset)
    # The derived seed stays an int so the checkpoint manifest records it
    # and a resumed run is validated against it.
    pisa = app_specific_pairwise(
        space,
        schedulers,
        config=config,
        rng=derive_seed(rng, workflow, ccr, "pisa"),
        progress=progress,
        jobs=jobs,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    return Panel(workflow=workflow, ccr=ccr, benchmark=benchmark, pisa=pisa)


@dataclass
class Fig1019Result:
    panels: list[Panel] = field(default_factory=list)

    @property
    def report(self) -> str:
        return "\n\n".join(p.render() for p in self.panels)


def run(
    workflows: tuple[str, ...] | None = None,
    ccrs: tuple[float, ...] | None = None,
    schedulers: list[str] | None = None,
    config: PISAConfig | None = None,
    rng: int = 0,
    full: bool | None = None,
    progress=None,
    jobs: int = 1,
    run_dir=None,
    resume: bool = False,
) -> Fig1019Result:
    """Regenerate Figs. 10-19 panels.

    Defaults: srasearch + blast (the two panels in the paper body) at
    CCRs {0.2, 1.0}; full scale runs all nine workflows at all five CCRs
    (the appendix).  With a ``run_dir``, every panel checkpoints its
    (pair, restart) units to ``run_dir/<workflow>_ccr<ccr>`` so the
    whole multi-panel sweep is resumable.
    """
    if workflows is None:
        workflows = pick(
            ("srasearch", "blast"),
            (
                "srasearch",
                "blast",
                "bwa",
                "epigenomics",
                "genome",
                "montage",
                "seismology",
                "soykb",
                "cycles",
            ),
            full,
        )
    if ccrs is None:
        ccrs = pick((0.2, 1.0), PAPER_CCRS, full)
    result = Fig1019Result()
    for workflow in workflows:
        for ccr in ccrs:
            checkpoint_dir = None
            if run_dir is not None:
                checkpoint_dir = Path(run_dir) / f"{workflow}_ccr{ccr}"
            result.panels.append(
                run_panel(
                    workflow,
                    ccr,
                    schedulers=schedulers,
                    config=config,
                    rng=rng,
                    full=full,
                    progress=progress,
                    jobs=jobs,
                    checkpoint_dir=checkpoint_dir,
                    resume=resume,
                )
            )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report)
