"""Figs. 10-19: application-specific benchmarking + PISA panels.

For each scientific workflow and each CCR in {0.2, 0.5, 1, 2, 5}
(Section VII), the paper shows a panel whose top row is traditional
benchmarking (makespan-ratio gradients over an in-family dataset) and
whose remaining rows are the pairwise PISA matrix restricted to the
application's search space — schedulers {CPoP, FastestNode, HEFT, MaxMin,
MinMin, WBA}.

Each panel is a pair of declarative sweeps — a benchmark-mode sweep over
the in-family dataset and a PISA-mode sweep in the restricted space
(:func:`repro.sweeps.fig10_19_bench_spec` /
:func:`~repro.sweeps.fig10_19_pisa_spec`) — executed by
:func:`repro.sweeps.run_sweep`.  Figs. 10/11 are srasearch and blast;
Figs. 12-19 (appendix) cover the remaining workflows.  The driver
regenerates any subset; the default scale runs two workflows x two CCRs
with a shortened annealing schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.benchmarking.harness import BenchmarkResult
from repro.benchmarking.heatmap import format_gradient, render_matrix
from repro.experiments.config import pick, resolve_run_dir
from repro.pisa.app_specific import PAPER_CCRS
from repro.pisa.pisa import PISAConfig, PairwiseResult
from repro.sweeps import fig10_19_bench_spec, fig10_19_pisa_spec, run_sweep

__all__ = ["Panel", "run_panel", "Fig1019Result", "run"]


@dataclass
class Panel:
    """One (workflow, CCR) panel: benchmark row + PISA matrix."""

    workflow: str
    ccr: float
    benchmark: BenchmarkResult
    pisa: PairwiseResult

    def render(self) -> str:
        schedulers = self.pisa.schedulers
        values = {
            (baseline, target): result.best_ratio
            for (target, baseline), result in self.pisa.results.items()
        }
        matrix = render_matrix(
            values,
            row_labels=schedulers,
            col_labels=schedulers,
            title=f"{self.workflow} (CCR = {self.ccr}) — PISA (row = base, col = target)",
            row_header="base",
        )
        bench_cells = "  ".join(
            f"{s}={format_gradient(self.benchmark.summary(s))}" for s in schedulers
        )
        return matrix + "\nBenchmarking: " + bench_cells


def run_panel(
    workflow: str,
    ccr: float,
    schedulers: list[str] | None = None,
    bench_instances: int = 10,
    config: PISAConfig | None = None,
    rng: int = 0,
    full: bool | None = None,
    progress=None,
    jobs: int = 1,
    run_dir=None,
    resume: bool = False,
    checkpoint_dir=None,
) -> Panel:
    """One Figs. 10-19 panel.

    With a ``run_dir``, the panel's two sweeps checkpoint to
    ``run_dir/bench`` and ``run_dir/pisa``.  ``checkpoint_dir`` is a
    deprecated alias for ``run_dir``.
    """
    run_dir = resolve_run_dir(run_dir, checkpoint_dir, "fig10_19_app_specific.run_panel")
    bench_spec = fig10_19_bench_spec(
        workflow, ccr, schedulers=schedulers, bench_instances=bench_instances, seed=rng
    )
    pisa_spec = fig10_19_pisa_spec(
        workflow, ccr, schedulers=schedulers, config=config, seed=rng, full=full
    )
    run_dir = Path(run_dir) if run_dir is not None else None
    bench = run_sweep(
        bench_spec,
        jobs=jobs,
        run_dir=run_dir / "bench" if run_dir is not None else None,
        resume=resume,
    )
    pisa = run_sweep(
        pisa_spec,
        jobs=jobs,
        run_dir=run_dir / "pisa" if run_dir is not None else None,
        resume=resume,
        progress=progress,
    )
    return Panel(workflow=workflow, ccr=ccr, benchmark=bench.benchmark, pisa=pisa.pairwise)


@dataclass
class Fig1019Result:
    panels: list[Panel] = field(default_factory=list)

    @property
    def report(self) -> str:
        return "\n\n".join(p.render() for p in self.panels)


def run(
    workflows: tuple[str, ...] | None = None,
    ccrs: tuple[float, ...] | None = None,
    schedulers: list[str] | None = None,
    config: PISAConfig | None = None,
    rng: int = 0,
    full: bool | None = None,
    progress=None,
    jobs: int = 1,
    run_dir=None,
    resume: bool = False,
) -> Fig1019Result:
    """Regenerate Figs. 10-19 panels.

    Defaults: srasearch + blast (the two panels in the paper body) at
    CCRs {0.2, 1.0}; full scale runs all nine workflows at all five CCRs
    (the appendix).  With a ``run_dir``, every panel checkpoints its
    work units to ``run_dir/<workflow>_ccr<ccr>/{bench,pisa}`` so the
    whole multi-panel sweep is resumable.
    """
    if workflows is None:
        workflows = pick(
            ("srasearch", "blast"),
            (
                "srasearch",
                "blast",
                "bwa",
                "epigenomics",
                "genome",
                "montage",
                "seismology",
                "soykb",
                "cycles",
            ),
            full,
        )
    if ccrs is None:
        ccrs = pick((0.2, 1.0), PAPER_CCRS, full)
    result = Fig1019Result()
    for workflow in workflows:
        for ccr in ccrs:
            panel_dir = None
            if run_dir is not None:
                panel_dir = Path(run_dir) / f"{workflow}_ccr{ccr}"
            result.panels.append(
                run_panel(
                    workflow,
                    ccr,
                    schedulers=schedulers,
                    config=config,
                    rng=rng,
                    full=full,
                    progress=progress,
                    jobs=jobs,
                    run_dir=panel_dir,
                    resume=resume,
                )
            )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().report)
