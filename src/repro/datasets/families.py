"""Named instance families: parametric distributions over problem instances.

A *family* is a function ``rng -> ProblemInstance`` drawing one sample of
a parametric instance distribution — the Figs. 7/8 hand-crafted families
of Section VI-B live here, and users can register their own.  Families
are the ``{"kind": "family"}`` instance source of the declarative sweep
API (:mod:`repro.sweeps`): a benchmark-mode sweep samples a family
``num_instances`` times (each sample on its own spawned RNG stream) and
compares scheduler makespan distributions.

The registry mirrors the scheduler/dataset registries: keyed by name,
importable side-effect free, with :func:`list_families` for discovery.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.exceptions import DatasetError
from repro.core.instance import ProblemInstance
from repro.core.network import Network
from repro.core.task_graph import TaskGraph
from repro.utils.distributions import clipped_gaussian
from repro.utils.rng import as_generator

__all__ = [
    "register_family",
    "get_family",
    "list_families",
    "fig7_instance",
    "fig8_instance",
]

#: Tiny positive floor for sampled node speeds (clip floor is nominally 0).
_MIN_SPEED = 1e-6

FamilyFactory = Callable[..., ProblemInstance]

_FAMILIES: dict[str, FamilyFactory] = {}


def register_family(name: str, factory: FamilyFactory) -> None:
    """Register ``factory`` (an ``rng -> ProblemInstance`` sampler) as ``name``."""
    if not name:
        raise ValueError("family name must be a non-empty string")
    _FAMILIES[name] = factory


def get_family(name: str) -> FamilyFactory:
    """Look up a registered family factory by name."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise DatasetError(
            f"unknown instance family {name!r}; registered families: "
            f"{', '.join(sorted(_FAMILIES)) or '(none)'}"
        ) from None


def list_families() -> list[str]:
    """Names of all registered instance families, sorted."""
    return sorted(_FAMILIES)


# ---------------------------------------------------------------------- #
# The Figs. 7/8 families (Section VI-B)
# ---------------------------------------------------------------------- #
def fig7_instance(rng=None) -> ProblemInstance:
    """One sample of the Fig. 7 family (HEFT-adversarial fork-join).

    A 4-task fork-join A -> {B, C} -> D where one branch has a very
    expensive *initial* communication: tasks A, D cost 1; B, C ~ clipped
    N(10, 10/3, min 0); dependencies A->B, B->D, C->D cost 1 and A->C ~
    clipped N(100, 100/3, min 0), on a homogeneous network.  (The figure
    labels A->C as the expensive edge; the body text says C->D — we
    follow the figure, which matches the stated intuition of a high
    initial communication cost.  EXPERIMENTS.md records the discrepancy.)
    """
    gen = as_generator(rng)
    b = clipped_gaussian(gen, 10.0, 10.0 / 3.0, low=0.0)
    c = clipped_gaussian(gen, 10.0, 10.0 / 3.0, low=0.0)
    ac = clipped_gaussian(gen, 100.0, 100.0 / 3.0, low=0.0)
    tg = TaskGraph.from_dicts(
        {"A": 1.0, "B": b, "C": c, "D": 1.0},
        {("A", "B"): 1.0, ("A", "C"): ac, ("B", "D"): 1.0, ("C", "D"): 1.0},
    )
    net = Network.homogeneous(3, speed=1.0, strength=1.0)
    return ProblemInstance(net, tg, name="fig7")


def fig8_instance(rng=None, num_inner: int = 9) -> ProblemInstance:
    """One sample of the Fig. 8 family (CPoP-adversarial wide fork-join).

    A wide fork-join A -> B..J -> K (9 inner tasks) with cheap fork edges
    ~N(1, 1/3) and expensive join edges ~N(10, 10/3), on a 4-node network
    whose fastest node (speed 3, others ~N(1, 1/3)) has a *weak* link
    ~N(1, 1/3) to the second-fastest node while all other links are
    strong ~N(10, 5/3).
    """
    gen = as_generator(rng)
    tg = TaskGraph()
    tg.add_task("A", clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0))
    inner = [chr(ord("B") + i) for i in range(num_inner)]  # B..J for 9
    for name in inner:
        tg.add_task(name, clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0))
    tg.add_task("K", clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0))
    for name in inner:
        tg.add_dependency("A", name, clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0))
        tg.add_dependency(name, "K", clipped_gaussian(gen, 10.0, 10.0 / 3.0, low=0.0))

    # 4 nodes: v1 fastest (speed 3); weak v1-v2 link; all other links strong.
    speeds = {"v1": 3.0}
    for i in (2, 3, 4):
        speeds[f"v{i}"] = max(clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0), _MIN_SPEED)
    net = Network()
    for name, speed in speeds.items():
        net.add_node(name, speed)
    ordered = sorted(speeds, key=lambda v: -speeds[v])
    fast_pair = {ordered[0], ordered[1]}
    names = list(speeds)
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            if {u, v} == fast_pair:
                strength = clipped_gaussian(gen, 1.0, 1.0 / 3.0, low=0.0)
            else:
                strength = clipped_gaussian(gen, 10.0, 5.0 / 3.0, low=0.0)
            net.set_strength(u, v, strength)
    return ProblemInstance(net, tg, name="fig8")


register_family("fig7", fig7_instance)
register_family("fig8", fig8_instance)
