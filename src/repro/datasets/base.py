"""Datasets: named collections of problem instances (Table II).

SAGA "includes interfaces for generating, saving, and loading datasets for
benchmarking" (Section IV).  A :class:`Dataset` is an ordered, named list
of :class:`~repro.core.ProblemInstance`; generators for the 16 datasets of
Table II register themselves in a global registry keyed by the paper's
dataset names.
"""

from __future__ import annotations

import gzip
import json
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.exceptions import DatasetError
from repro.core.instance import ProblemInstance

__all__ = [
    "Dataset",
    "register_dataset",
    "get_dataset_generator",
    "list_datasets",
    "generate_dataset",
]


@dataclass
class Dataset:
    """A named, ordered collection of problem instances."""

    name: str
    instances: list[ProblemInstance] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instances)

    def __getitem__(self, index: int) -> ProblemInstance:
        return self.instances[index]

    def __iter__(self) -> Iterator[ProblemInstance]:
        return iter(self.instances)

    def add(self, instance: ProblemInstance) -> None:
        self.instances.append(instance)

    def validate(self) -> None:
        """Validate every instance (datasets are trusted after generation)."""
        for instance in self.instances:
            instance.validate()

    # ------------------------------------------------------------------ #
    # Persistence (gzipped JSON; datasets of 1000 instances stay small)
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        """Write the dataset as gzipped JSON."""
        payload = {
            "name": self.name,
            "instances": [inst.to_dict() for inst in self.instances],
        }
        path = Path(path)
        try:
            with gzip.open(path, "wt") as fh:
                json.dump(payload, fh)
        except OSError as exc:  # pragma: no cover - filesystem dependent
            raise DatasetError(f"could not save dataset to {path}: {exc}") from exc

    @classmethod
    def load(cls, path: str | Path) -> "Dataset":
        """Read a dataset written by :meth:`save`."""
        path = Path(path)
        try:
            with gzip.open(path, "rt") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise DatasetError(f"could not load dataset from {path}: {exc}") from exc
        return cls(
            name=payload["name"],
            instances=[ProblemInstance.from_dict(p) for p in payload["instances"]],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset({self.name!r}, {len(self)} instances)"


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
#: A dataset generator: (num_instances, rng, **kwargs) -> Dataset.
DatasetGenerator = Callable[..., Dataset]

_REGISTRY: dict[str, DatasetGenerator] = {}


def register_dataset(name: str) -> Callable[[DatasetGenerator], DatasetGenerator]:
    """Decorator registering a generator under the paper's dataset name."""

    def decorator(func: DatasetGenerator) -> DatasetGenerator:
        if name in _REGISTRY and _REGISTRY[name] is not func:
            raise ValueError(f"dataset name {name!r} already registered")
        _REGISTRY[name] = func
        return func

    return decorator


def get_dataset_generator(name: str) -> DatasetGenerator:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None


def list_datasets() -> list[str]:
    """Sorted names of all registered dataset generators."""
    return sorted(_REGISTRY)


def generate_dataset(name: str, num_instances: int | None = None, rng=None, **kwargs) -> Dataset:
    """Generate a registered dataset.

    ``num_instances=None`` uses the generator's paper-scale default (1000
    for the random and IoT datasets, 100 for the scientific workflows).
    """
    gen = get_dataset_generator(name)
    if num_instances is None:
        return gen(rng=rng, **kwargs)
    if num_instances < 0:
        raise DatasetError("num_instances must be non-negative")
    return gen(num_instances=num_instances, rng=rng, **kwargs)


def _sequence_equal(a: Sequence, b: Sequence) -> bool:  # pragma: no cover - helper
    return len(a) == len(b) and all(x == y for x, y in zip(a, b))
