"""The 16 dataset generators of Table II.

Importing this package registers every generator; use
:func:`generate_dataset` (or the per-dataset functions) to build them:

>>> from repro.datasets import generate_dataset
>>> ds = generate_dataset("chains", num_instances=10, rng=0)
>>> len(ds)
10

Paper-scale defaults: 1000 instances for the random (in_trees, out_trees,
chains) and IoT (etl, predict, stats, train) datasets, 100 for the nine
scientific workflows.
"""

from repro.datasets.base import (
    Dataset,
    generate_dataset,
    get_dataset_generator,
    list_datasets,
    register_dataset,
)
from repro.datasets.random_graphs import (
    chains_dataset,
    in_tree_task_graph,
    in_trees_dataset,
    out_tree_task_graph,
    out_trees_dataset,
    parallel_chains_task_graph,
    random_network,
    random_weight,
)
from repro.datasets.iot import (
    IOT_APPLICATIONS,
    edge_fog_cloud_network,
    etl_dataset,
    iot_task_graph,
    predict_dataset,
    stats_dataset,
    train_dataset,
)
from repro.datasets.traces import (
    ExecutionTrace,
    TaskTypeProfile,
    TraceRecord,
    chameleon_network,
    synthetic_trace,
)
from repro.datasets import workflows
from repro.datasets.families import (
    fig7_instance,
    fig8_instance,
    get_family,
    list_families,
    register_family,
)
from repro.datasets.workflows import get_recipe, list_recipes, workflow_dataset

#: Table II's 16 dataset names, in the row order of Fig. 2 (alphabetical).
PAPER_DATASETS = [
    "blast",
    "bwa",
    "chains",
    "cycles",
    "epigenomics",
    "etl",
    "genome",
    "in_trees",
    "montage",
    "out_trees",
    "predict",
    "seismology",
    "soykb",
    "srasearch",
    "stats",
    "train",
]

__all__ = [
    "Dataset",
    "generate_dataset",
    "get_dataset_generator",
    "list_datasets",
    "register_dataset",
    "random_weight",
    "random_network",
    "in_tree_task_graph",
    "out_tree_task_graph",
    "parallel_chains_task_graph",
    "in_trees_dataset",
    "out_trees_dataset",
    "chains_dataset",
    "IOT_APPLICATIONS",
    "iot_task_graph",
    "edge_fog_cloud_network",
    "etl_dataset",
    "predict_dataset",
    "stats_dataset",
    "train_dataset",
    "ExecutionTrace",
    "TaskTypeProfile",
    "TraceRecord",
    "chameleon_network",
    "synthetic_trace",
    "register_family",
    "get_family",
    "list_families",
    "fig7_instance",
    "fig8_instance",
    "workflows",
    "get_recipe",
    "list_recipes",
    "workflow_dataset",
    "PAPER_DATASETS",
]
