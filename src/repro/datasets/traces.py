"""Synthetic execution traces standing in for the WfCommons archives.

The paper builds its scientific-workflow datasets from *real execution
traces* ("detailed information from a real execution of the application
including task start/end times, cpu usages/requirements, data I/O sizes,
etc.") hosted by WfCommons, and generates Chameleon-cloud-inspired
networks "by fitting a distribution to the machine speed data from the
execution traces ... and then sampling from that distribution"
(Section IV-B).  Those archives are not available offline, so this module
provides the closest synthetic equivalent (DESIGN.md substitution #1/#3):

* every workflow recipe declares a :class:`TaskTypeProfile` per task type
  (typical runtime and output size, with realistic spreads);
* :func:`synthetic_trace` "executes" the workflow a few times on a pool of
  machines with log-normally distributed speeds and records per-task
  runtimes, I/O sizes, and machine speeds — the same columns the real
  traces provide;
* :class:`ExecutionTrace` exposes exactly the quantities downstream code
  needs: fitted runtime/output distributions per task type, a fitted
  machine-speed distribution for Chameleon-style networks, and the
  observed min/max ranges the application-specific PISA perturbations are
  scaled to (Section VII-A).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.network import Network
from repro.utils.distributions import LogNormalModel
from repro.utils.rng import as_generator

__all__ = [
    "TaskTypeProfile",
    "TraceRecord",
    "ExecutionTrace",
    "synthetic_trace",
    "chameleon_network",
]


@dataclass(frozen=True)
class TaskTypeProfile:
    """Typical behaviour of one task type (e.g. montage's ``mProject``).

    ``mean_runtime`` is in abstract seconds on a unit-speed machine;
    ``mean_output`` is the size of the data the task emits (abstract MB).
    ``cv`` is the coefficient of variation applied to both.
    """

    mean_runtime: float
    mean_output: float
    cv: float = 0.35

    def __post_init__(self) -> None:
        if self.mean_runtime <= 0 or self.mean_output < 0:
            raise DatasetError("task type profile needs positive runtime and non-negative output")
        if not 0 <= self.cv < 1.5:
            raise DatasetError("cv out of sane range [0, 1.5)")


@dataclass(frozen=True)
class TraceRecord:
    """One task execution observed in a (synthetic) trace."""

    task_type: str
    runtime: float
    output_size: float
    machine: str
    machine_speed: float


@dataclass
class ExecutionTrace:
    """A bag of trace records with the fit/range interface the paper uses."""

    workflow: str
    records: list[TraceRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Fitted models (what WfCommons-style generation samples from)
    # ------------------------------------------------------------------ #
    def runtime_model(self, task_type: str) -> LogNormalModel:
        samples = [r.runtime for r in self.records if r.task_type == task_type]
        if not samples:
            raise DatasetError(f"trace has no records for task type {task_type!r}")
        return LogNormalModel.fit(samples)

    def output_model(self, task_type: str) -> LogNormalModel:
        samples = [
            r.output_size for r in self.records if r.task_type == task_type and r.output_size > 0
        ]
        if not samples:
            # All observed outputs are zero (pure-sink task type).
            return LogNormalModel(mu=float("-inf"), sigma=0.0)
        return LogNormalModel.fit(samples)

    def speed_model(self) -> LogNormalModel:
        speeds = sorted({(r.machine, r.machine_speed) for r in self.records})
        if not speeds:
            raise DatasetError("trace has no machine records")
        return LogNormalModel.fit([s for _, s in speeds])

    # ------------------------------------------------------------------ #
    # Observed ranges (what app-specific PISA perturbations scale to)
    # ------------------------------------------------------------------ #
    @property
    def runtime_range(self) -> tuple[float, float]:
        values = [r.runtime for r in self.records]
        return (min(values), max(values))

    @property
    def output_size_range(self) -> tuple[float, float]:
        values = [r.output_size for r in self.records]
        return (min(values), max(values))

    @property
    def speed_range(self) -> tuple[float, float]:
        values = [r.machine_speed for r in self.records]
        return (min(values), max(values))

    @property
    def task_types(self) -> list[str]:
        return sorted({r.task_type for r in self.records})


def synthetic_trace(
    workflow: str,
    profiles: Mapping[str, TaskTypeProfile],
    rng: int | np.random.Generator | None = None,
    executions_per_type: int = 25,
    num_machines: int = 8,
    speed_sigma: float = 0.35,
) -> ExecutionTrace:
    """Fabricate an execution trace for a workflow.

    Each task type is "observed" ``executions_per_type`` times across a
    pool of machines whose speeds are log-normal around 1.  Runtimes and
    output sizes are log-normal around the profile means with the
    profile's coefficient of variation — the shape the real WfCommons
    traces exhibit (heavy-ish right tails, strictly positive).
    """
    if executions_per_type < 2:
        raise DatasetError("need at least 2 executions per type to fit distributions")
    gen = as_generator(rng)
    machines = {f"m{i}": float(gen.lognormal(0.0, speed_sigma)) for i in range(num_machines)}
    records: list[TraceRecord] = []
    for task_type, profile in sorted(profiles.items()):
        sigma = _cv_to_sigma(profile.cv)
        mu_rt = np.log(profile.mean_runtime) - sigma**2 / 2.0
        for _ in range(executions_per_type):
            machine = f"m{int(gen.integers(num_machines))}"
            runtime = float(gen.lognormal(mu_rt, sigma))
            if profile.mean_output > 0:
                mu_out = np.log(profile.mean_output) - sigma**2 / 2.0
                output = float(gen.lognormal(mu_out, sigma))
            else:
                output = 0.0
            records.append(
                TraceRecord(
                    task_type=task_type,
                    runtime=runtime,
                    output_size=output,
                    machine=machine,
                    machine_speed=machines[machine],
                )
            )
    return ExecutionTrace(workflow=workflow, records=records)


def chameleon_network(
    trace: ExecutionTrace,
    rng: int | np.random.Generator | None = None,
    min_nodes: int = 4,
    max_nodes: int = 10,
) -> Network:
    """A Chameleon-cloud-inspired network (Section IV-B).

    Node speeds are sampled from the distribution fitted to the trace's
    machine speeds.  "Because Chameleon uses a shared filesystem for data
    transfer ... the communication strength between nodes is considered to
    be infinite."
    """
    gen = as_generator(rng)
    model = trace.speed_model()
    n = int(gen.integers(min_nodes, max_nodes + 1))
    speeds = {}
    for i in range(n):
        speed = float(model.sample(gen))
        speeds[f"v{i + 1}"] = max(speed, 1e-9)
    return Network.from_speeds(speeds, default_strength=float("inf"))


def _cv_to_sigma(cv: float) -> float:
    """Log-normal sigma for a target coefficient of variation."""
    return float(np.sqrt(np.log(1.0 + cv**2)))
