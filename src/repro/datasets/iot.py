"""IoT/edge datasets of Table II: etl, predict, stats, train.

Section IV-B: "The task graphs and networks are generated using the
approach described in [35].  The task graph structure is based on
real-world IoT data streaming applications [RIoTBench, 34] and the node
weights are generated using a clipped gaussian distribution (mean: 35,
standard deviation: 25/3, min: 10, max: 60).  The input size of the
application is generated using a clipped gaussian distribution (mean:
1000, standard deviation: 500/3, min: 500, max: 1500) and the edge
weights are determined by the known input/output ratios of the tasks."

Each application has a fixed DAG of named operator tasks (the RIoTBench
dataflows), encoded below as ``(task, io_ratio, parents)`` rows.  A task's
input size is the sum of its incoming edge weights (the sampled
application input for sources); its output is ``io_ratio * input``; every
outgoing edge carries the full output.

Networks are Edge/Fog/Cloud (Varshney et al. [35]): edge nodes with CPU
speed 1 (75-125 of them), fog nodes with speed 6 (3-7), cloud nodes with
speed 50 (1-10).  Strengths: edge-fog 60, fog-cloud and fog-fog 100,
edge-cloud 60, cloud-cloud infinite; edge-edge is not specified by the
paper and we use 60 (the edge-tier uplink rate).
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import ProblemInstance
from repro.core.network import Network
from repro.core.task_graph import TaskGraph
from repro.datasets.base import Dataset, register_dataset
from repro.utils.distributions import clipped_gaussian
from repro.utils.rng import as_generator

__all__ = [
    "IOT_APPLICATIONS",
    "iot_task_graph",
    "edge_fog_cloud_network",
    "etl_dataset",
    "predict_dataset",
    "stats_dataset",
    "train_dataset",
]

#: RIoTBench-inspired application dataflows: name -> ordered rows of
#: (task, io_ratio, parents).  io_ratio is output bytes per input byte.
IOT_APPLICATIONS: dict[str, list[tuple[str, float, list[str]]]] = {
    # Extract-Transform-Load: a mostly linear cleaning pipeline that fans
    # out to two publishing sinks.
    "etl": [
        ("source", 1.00, []),
        ("senml_parse", 0.90, ["source"]),
        ("range_filter", 0.95, ["senml_parse"]),
        ("bloom_filter", 0.95, ["range_filter"]),
        ("interpolate", 1.00, ["bloom_filter"]),
        ("join", 1.00, ["interpolate"]),
        ("annotate", 1.05, ["join"]),
        ("csv_to_senml", 1.00, ["annotate"]),
        ("azure_insert", 0.10, ["csv_to_senml"]),
        ("mqtt_publish", 0.10, ["csv_to_senml"]),
    ],
    # Model-serving: parse, score with two models in parallel, average,
    # estimate error, publish.
    "predict": [
        ("mqtt_source", 1.00, []),
        ("senml_parse", 0.90, ["mqtt_source"]),
        ("decision_tree_predict", 0.30, ["senml_parse"]),
        ("linear_reg_predict", 0.30, ["senml_parse"]),
        ("average", 0.50, ["decision_tree_predict", "linear_reg_predict"]),
        ("error_estimate", 0.40, ["average", "senml_parse"]),
        ("mqtt_publish", 0.10, ["error_estimate"]),
    ],
    # Streaming statistics: three parallel statistic branches joined by a
    # plotting/grouping sink.
    "stats": [
        ("source", 1.00, []),
        ("senml_parse", 0.90, ["source"]),
        ("average", 0.30, ["senml_parse"]),
        ("kalman_filter", 0.90, ["senml_parse"]),
        ("sliding_linear_reg", 0.40, ["kalman_filter"]),
        ("distinct_count", 0.20, ["senml_parse"]),
        ("group_viz", 0.30, ["average", "sliding_linear_reg", "distinct_count"]),
        ("sink", 0.05, ["group_viz"]),
    ],
    # Model-training: fetch a table, train two models in parallel, write
    # each to blob storage, announce over MQTT.
    "train": [
        ("timer_source", 1.00, []),
        ("table_read", 1.20, ["timer_source"]),
        ("decision_tree_train", 0.25, ["table_read"]),
        ("linear_reg_train", 0.25, ["table_read"]),
        ("blob_write_dt", 0.05, ["decision_tree_train"]),
        ("blob_write_lr", 0.05, ["linear_reg_train"]),
        ("mqtt_publish", 0.02, ["blob_write_dt", "blob_write_lr"]),
    ],
}


def iot_task_graph(app: str, rng: int | np.random.Generator | None = None) -> TaskGraph:
    """One task graph for a RIoTBench-style application.

    Node weights ~ clipped N(35, 25/3) in [10, 60]; the application input
    size ~ clipped N(1000, 500/3) in [500, 1500]; edge weights follow the
    per-task input/output ratios.
    """
    if app not in IOT_APPLICATIONS:
        raise KeyError(f"unknown IoT application {app!r}; known: {sorted(IOT_APPLICATIONS)}")
    gen = as_generator(rng)
    rows = IOT_APPLICATIONS[app]
    input_size = clipped_gaussian(gen, 1000.0, 500.0 / 3.0, low=500.0, high=1500.0)
    tg = TaskGraph()
    outputs: dict[str, float] = {}
    for task, ratio, parents in rows:
        cost = clipped_gaussian(gen, 35.0, 25.0 / 3.0, low=10.0, high=60.0)
        tg.add_task(task, cost)
        if parents:
            task_input = 0.0
            for parent in parents:
                tg.add_dependency(parent, task, outputs[parent])
                task_input += outputs[parent]
        else:
            task_input = input_size
        outputs[task] = ratio * task_input
    return tg


def edge_fog_cloud_network(
    rng: int | np.random.Generator | None = None,
    edge_range: tuple[int, int] = (75, 125),
    fog_range: tuple[int, int] = (3, 7),
    cloud_range: tuple[int, int] = (1, 10),
) -> Network:
    """An Edge/Fog/Cloud network with the paper's exact tier parameters."""
    gen = as_generator(rng)
    num_edge = int(gen.integers(edge_range[0], edge_range[1] + 1))
    num_fog = int(gen.integers(fog_range[0], fog_range[1] + 1))
    num_cloud = int(gen.integers(cloud_range[0], cloud_range[1] + 1))

    net = Network()
    tiers: dict[str, list[str]] = {"edge": [], "fog": [], "cloud": []}
    for i in range(num_edge):
        name = f"edge{i}"
        net.add_node(name, 1.0)
        tiers["edge"].append(name)
    for i in range(num_fog):
        name = f"fog{i}"
        net.add_node(name, 6.0)
        tiers["fog"].append(name)
    for i in range(num_cloud):
        name = f"cloud{i}"
        net.add_node(name, 50.0)
        tiers["cloud"].append(name)

    def tier(node: str) -> str:
        return "edge" if node.startswith("edge") else ("fog" if node.startswith("fog") else "cloud")

    # Keys are sorted tier pairs (the lookup below sorts alphabetically).
    strength = {
        ("edge", "edge"): 60.0,
        ("edge", "fog"): 60.0,
        ("cloud", "edge"): 60.0,
        ("fog", "fog"): 100.0,
        ("cloud", "fog"): 100.0,
        ("cloud", "cloud"): float("inf"),
    }
    nodes = net.nodes
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            key = tuple(sorted((tier(u), tier(v))))
            net.set_strength(u, v, strength[key])  # type: ignore[index]
    return net


def _iot_dataset(app: str, num_instances: int, rng, network_kwargs: dict | None = None) -> Dataset:
    gen = as_generator(rng)
    dataset = Dataset(name=app)
    for i in range(num_instances):
        tg = iot_task_graph(app, gen)
        net = edge_fog_cloud_network(gen, **(network_kwargs or {}))
        dataset.add(ProblemInstance(net, tg, name=f"{app}[{i}]"))
    return dataset


@register_dataset("etl")
def etl_dataset(num_instances: int = 1000, rng=None, network_kwargs: dict | None = None) -> Dataset:
    """1000 ETL instances on Edge/Fog/Cloud networks (Table II)."""
    return _iot_dataset("etl", num_instances, rng, network_kwargs)


@register_dataset("predict")
def predict_dataset(
    num_instances: int = 1000, rng=None, network_kwargs: dict | None = None
) -> Dataset:
    """1000 PREDICT instances on Edge/Fog/Cloud networks (Table II)."""
    return _iot_dataset("predict", num_instances, rng, network_kwargs)


@register_dataset("stats")
def stats_dataset(
    num_instances: int = 1000, rng=None, network_kwargs: dict | None = None
) -> Dataset:
    """1000 STATS instances on Edge/Fog/Cloud networks (Table II)."""
    return _iot_dataset("stats", num_instances, rng, network_kwargs)


@register_dataset("train")
def train_dataset(
    num_instances: int = 1000, rng=None, network_kwargs: dict | None = None
) -> Dataset:
    """1000 TRAIN instances on Edge/Fog/Cloud networks (Table II)."""
    return _iot_dataset("train", num_instances, rng, network_kwargs)
