"""1000genome workflow recipe (da Silva et al. [29]).

The 1000-genomes reconstruction workflow processes chromosomes
independently.  For each chromosome, ``k`` parallel ``individuals`` tasks
parse slices of the VCF, an ``individuals_merge`` gathers them, a
``sifting`` task (independent of the individuals) extracts SIFT scores,
and two analysis tasks — ``mutation_overlap`` and ``frequency`` — consume
both the merge and the sifting output:

    per chromosome c:
        k x individuals_c -> individuals_merge_c
        sifting_c
        {individuals_merge_c, sifting_c} -> mutation_overlap_c
        {individuals_merge_c, sifting_c} -> frequency_c
"""

from __future__ import annotations

import numpy as np

from repro.datasets.traces import TaskTypeProfile
from repro.datasets.workflows.base import StructureSpec, WorkflowRecipe, register_recipe

__all__ = ["GenomeRecipe"]


@register_recipe
class GenomeRecipe(WorkflowRecipe):
    """Per-chromosome diamond: parallel parse, merge + sift, two analyses."""

    name = "genome"

    min_chroms, max_chroms = 1, 3
    min_individuals, max_individuals = 3, 8

    @property
    def task_types(self) -> dict[str, TaskTypeProfile]:
        return {
            "individuals": TaskTypeProfile(mean_runtime=90.0, mean_output=8.0),
            "individuals_merge": TaskTypeProfile(mean_runtime=25.0, mean_output=30.0),
            "sifting": TaskTypeProfile(mean_runtime=15.0, mean_output=2.0),
            "mutation_overlap": TaskTypeProfile(mean_runtime=40.0, mean_output=1.5),
            "frequency": TaskTypeProfile(mean_runtime=60.0, mean_output=1.5),
        }

    def structure(self, rng: np.random.Generator) -> StructureSpec:
        chroms = int(rng.integers(self.min_chroms, self.max_chroms + 1))
        rows: list[tuple[str, str, list[str]]] = []
        idx = 0

        def new(task_type: str, parents: list[str]) -> str:
            nonlocal idx
            name = f"t{idx}"
            idx += 1
            rows.append((name, task_type, parents))
            return name

        for _ in range(chroms):
            k = int(rng.integers(self.min_individuals, self.max_individuals + 1))
            parts = [new("individuals", []) for _ in range(k)]
            merge = new("individuals_merge", parts)
            sift = new("sifting", [])
            new("mutation_overlap", [merge, sift])
            new("frequency", [merge, sift])
        return rows
