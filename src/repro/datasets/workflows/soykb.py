"""SoyKB workflow recipe (soybean genomics, Liu et al. [32]).

SoyKB's resequencing pipeline runs a fixed 5-stage chain per sample
(align -> sort -> dedup -> add-replace -> haplotype-calling) and then a
global 4-stage tail combines and filters the per-sample variants:

    per sample s:
        align_s -> sort_s -> dedup_s -> add_replace_s -> haplotype_caller_s
    all haplotype_caller -> combine_variants -> genotype_gvcfs
        -> select_variants -> filtering
"""

from __future__ import annotations

import numpy as np

from repro.datasets.traces import TaskTypeProfile
from repro.datasets.workflows.base import StructureSpec, WorkflowRecipe, register_recipe

__all__ = ["SoykbRecipe"]


@register_recipe
class SoykbRecipe(WorkflowRecipe):
    """Parallel per-sample chains with a serial combine tail."""

    name = "soykb"

    min_samples, max_samples = 2, 6

    @property
    def task_types(self) -> dict[str, TaskTypeProfile]:
        return {
            "alignment_to_reference": TaskTypeProfile(mean_runtime=150.0, mean_output=20.0),
            "sort_sam": TaskTypeProfile(mean_runtime=25.0, mean_output=20.0),
            "dedup": TaskTypeProfile(mean_runtime=30.0, mean_output=18.0),
            "add_replace": TaskTypeProfile(mean_runtime=20.0, mean_output=18.0),
            "haplotype_caller": TaskTypeProfile(mean_runtime=200.0, mean_output=5.0),
            "combine_variants": TaskTypeProfile(mean_runtime=35.0, mean_output=12.0),
            "genotype_gvcfs": TaskTypeProfile(mean_runtime=80.0, mean_output=10.0),
            "select_variants": TaskTypeProfile(mean_runtime=15.0, mean_output=8.0),
            "filtering": TaskTypeProfile(mean_runtime=15.0, mean_output=6.0),
        }

    def structure(self, rng: np.random.Generator) -> StructureSpec:
        samples = int(rng.integers(self.min_samples, self.max_samples + 1))
        rows: list[tuple[str, str, list[str]]] = []
        idx = 0

        def new(task_type: str, parents: list[str]) -> str:
            nonlocal idx
            name = f"t{idx}"
            idx += 1
            rows.append((name, task_type, parents))
            return name

        callers: list[str] = []
        chain = [
            "alignment_to_reference",
            "sort_sam",
            "dedup",
            "add_replace",
            "haplotype_caller",
        ]
        for _ in range(samples):
            prev: list[str] = []
            for stage in chain:
                prev = [new(stage, prev)]
            callers.extend(prev)
        combine = new("combine_variants", callers)
        genotype = new("genotype_gvcfs", [combine])
        select = new("select_variants", [genotype])
        new("filtering", [select])
        return rows
