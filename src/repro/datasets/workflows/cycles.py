"""Cycles workflow recipe (agroecosystem model, da Silva et al. [27]).

Cycles simulates crop growth for (crop, soil, fertilization) parameter
combinations.  Each combination runs a small pipeline — a baseline
simulation, the actual simulation, a fertilization-increase variant, and
output parsers — and a final summary/plotting task gathers every parser's
output:

    per combination i:
        baseline_i -> cycles_i -> output_parser_i
        baseline_i -> fert_increase_i -> fi_output_parser_i
    all parsers -> summary

so the graph is a bundle of parallel 3-task chains with a single join.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.traces import TaskTypeProfile
from repro.datasets.workflows.base import StructureSpec, WorkflowRecipe, register_recipe

__all__ = ["CyclesRecipe"]


@register_recipe
class CyclesRecipe(WorkflowRecipe):
    """Parallel per-parameter pipelines joined by a summary task."""

    name = "cycles"

    min_combos, max_combos = 3, 8

    @property
    def task_types(self) -> dict[str, TaskTypeProfile]:
        return {
            "baseline_cycles": TaskTypeProfile(mean_runtime=40.0, mean_output=5.0),
            "cycles": TaskTypeProfile(mean_runtime=60.0, mean_output=6.0),
            "fertilizer_increase_cycles": TaskTypeProfile(mean_runtime=55.0, mean_output=6.0),
            "cycles_output_parser": TaskTypeProfile(mean_runtime=8.0, mean_output=1.5),
            "cycles_fi_output_parser": TaskTypeProfile(mean_runtime=8.0, mean_output=1.5),
            "cycles_plots": TaskTypeProfile(mean_runtime=25.0, mean_output=3.0),
        }

    def structure(self, rng: np.random.Generator) -> StructureSpec:
        k = int(rng.integers(self.min_combos, self.max_combos + 1))
        rows: list[tuple[str, str, list[str]]] = []
        parsers: list[str] = []
        idx = 0

        def new(task_type: str, parents: list[str]) -> str:
            nonlocal idx
            name = f"t{idx}"
            idx += 1
            rows.append((name, task_type, parents))
            return name

        for _ in range(k):
            baseline = new("baseline_cycles", [])
            sim = new("cycles", [baseline])
            fert = new("fertilizer_increase_cycles", [baseline])
            parsers.append(new("cycles_output_parser", [sim]))
            parsers.append(new("cycles_fi_output_parser", [fert]))
        new("cycles_plots", parsers)
        return rows
