"""Scientific-workflow recipes (Table II rows 4-12).

Importing this package registers the nine application recipes and their
dataset generators.
"""

from repro.datasets.workflows.base import (
    StructureSpec,
    WorkflowRecipe,
    get_recipe,
    list_recipes,
    register_recipe,
    workflow_dataset,
)
from repro.datasets.workflows.blast import BlastRecipe
from repro.datasets.workflows.bwa import BwaRecipe
from repro.datasets.workflows.cycles import CyclesRecipe
from repro.datasets.workflows.epigenomics import EpigenomicsRecipe
from repro.datasets.workflows.genome import GenomeRecipe
from repro.datasets.workflows.montage import MontageRecipe
from repro.datasets.workflows.seismology import SeismologyRecipe
from repro.datasets.workflows.soykb import SoykbRecipe
from repro.datasets.workflows.srasearch import SrasearchRecipe

__all__ = [
    "StructureSpec",
    "WorkflowRecipe",
    "get_recipe",
    "list_recipes",
    "register_recipe",
    "workflow_dataset",
    "BlastRecipe",
    "BwaRecipe",
    "CyclesRecipe",
    "EpigenomicsRecipe",
    "GenomeRecipe",
    "MontageRecipe",
    "SeismologyRecipe",
    "SoykbRecipe",
    "SrasearchRecipe",
]
