"""BWA workflow recipe (Burrows-Wheeler Aligner, makeflow-examples [25]).

BWA aligns DNA reads against a reference genome.  The makeflow BWA
workflow splits the input FASTQ into ``n`` shards, aligns each shard in
parallel, then concatenates the per-shard SAM files through a short merge
tail:

    fastq_reduce -> n x bwa_align -> cat_sam -> sort_sam

(fork, wide parallel stage, then a 2-task serial tail).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.traces import TaskTypeProfile
from repro.datasets.workflows.base import StructureSpec, WorkflowRecipe, register_recipe

__all__ = ["BwaRecipe"]


@register_recipe
class BwaRecipe(WorkflowRecipe):
    """Fork-join with a serial merge tail."""

    name = "bwa"

    min_width, max_width = 4, 14

    @property
    def task_types(self) -> dict[str, TaskTypeProfile]:
        return {
            "fastq_reduce": TaskTypeProfile(mean_runtime=10.0, mean_output=25.0),
            "bwa_align": TaskTypeProfile(mean_runtime=180.0, mean_output=8.0),
            "cat_sam": TaskTypeProfile(mean_runtime=15.0, mean_output=40.0),
            "sort_sam": TaskTypeProfile(mean_runtime=30.0, mean_output=35.0),
        }

    def structure(self, rng: np.random.Generator) -> StructureSpec:
        n = int(rng.integers(self.min_width, self.max_width + 1))
        rows: list[tuple[str, str, list[str]]] = [("t0", "fastq_reduce", [])]
        workers = [f"t{i}" for i in range(1, n + 1)]
        rows += [(w, "bwa_align", ["t0"]) for w in workers]
        rows.append((f"t{n + 1}", "cat_sam", list(workers)))
        rows.append((f"t{n + 2}", "sort_sam", [f"t{n + 1}"]))
        return rows
