"""Montage workflow recipe (astronomical image mosaics, Rynge et al. [30]).

Montage is the classic layered workflow.  ``n`` ``mProject`` tasks
reproject the input images; ``mDiffFit`` tasks fit the differences of
overlapping projection pairs; a single ``mConcatFit``/``mBgModel`` chain
computes background corrections, which ``n`` ``mBackground`` tasks apply
(each also re-reads its projection); a gather chain
``mImgtbl -> mAdd -> mShrink -> mJPEG`` assembles the mosaic:

    mProject_i                                (i = 1..n)
    mDiffFit_j   <- {mProject_j, mProject_j+1}  (j = 1..n-1, overlap pairs)
    mConcatFit   <- all mDiffFit
    mBgModel     <- mConcatFit
    mBackground_i <- {mBgModel, mProject_i}
    mImgtbl      <- all mBackground
    mAdd -> mShrink -> mJPEG
"""

from __future__ import annotations

import numpy as np

from repro.datasets.traces import TaskTypeProfile
from repro.datasets.workflows.base import StructureSpec, WorkflowRecipe, register_recipe

__all__ = ["MontageRecipe"]


@register_recipe
class MontageRecipe(WorkflowRecipe):
    """Layered reproject / diff-fit / background / gather structure."""

    name = "montage"

    min_width, max_width = 4, 10

    @property
    def task_types(self) -> dict[str, TaskTypeProfile]:
        return {
            "mProject": TaskTypeProfile(mean_runtime=100.0, mean_output=18.0),
            "mDiffFit": TaskTypeProfile(mean_runtime=15.0, mean_output=1.0),
            "mConcatFit": TaskTypeProfile(mean_runtime=10.0, mean_output=1.0),
            "mBgModel": TaskTypeProfile(mean_runtime=20.0, mean_output=0.5),
            "mBackground": TaskTypeProfile(mean_runtime=12.0, mean_output=18.0),
            "mImgtbl": TaskTypeProfile(mean_runtime=8.0, mean_output=1.0),
            "mAdd": TaskTypeProfile(mean_runtime=60.0, mean_output=50.0),
            "mShrink": TaskTypeProfile(mean_runtime=15.0, mean_output=12.0),
            "mJPEG": TaskTypeProfile(mean_runtime=5.0, mean_output=4.0),
        }

    def structure(self, rng: np.random.Generator) -> StructureSpec:
        n = int(rng.integers(self.min_width, self.max_width + 1))
        rows: list[tuple[str, str, list[str]]] = []
        projects = [f"p{i}" for i in range(n)]
        rows += [(p, "mProject", []) for p in projects]
        diffs = []
        for j in range(n - 1):
            name = f"d{j}"
            diffs.append(name)
            rows.append((name, "mDiffFit", [projects[j], projects[j + 1]]))
        rows.append(("concat", "mConcatFit", diffs))
        rows.append(("bgmodel", "mBgModel", ["concat"]))
        backgrounds = []
        for i, p in enumerate(projects):
            name = f"b{i}"
            backgrounds.append(name)
            rows.append((name, "mBackground", ["bgmodel", p]))
        rows.append(("imgtbl", "mImgtbl", backgrounds))
        rows.append(("add", "mAdd", ["imgtbl"]))
        rows.append(("shrink", "mShrink", ["add"]))
        rows.append(("jpeg", "mJPEG", ["shrink"]))
        return rows
