"""Seismology workflow recipe (Filgueira et al. [31]).

The Asterism/dispel4py seismology workflow deconvolves seismic signals:
``n`` independent ``sG1IterDecon`` tasks (one per station pair) feed a
single ``wrapper_siftSTFByMisfit`` gather task — the simplest structure
in the suite, a pure n-to-1 star:

    sG1IterDecon_1..n -> wrapper_siftSTFByMisfit

Stars are maximally parallel, so this dataset stresses exactly the
over-parallelization weakness PISA exposes in many schedulers.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.traces import TaskTypeProfile
from repro.datasets.workflows.base import StructureSpec, WorkflowRecipe, register_recipe

__all__ = ["SeismologyRecipe"]


@register_recipe
class SeismologyRecipe(WorkflowRecipe):
    """n-to-1 star."""

    name = "seismology"

    min_width, max_width = 6, 24

    @property
    def task_types(self) -> dict[str, TaskTypeProfile]:
        return {
            "sG1IterDecon": TaskTypeProfile(mean_runtime=45.0, mean_output=1.0),
            "wrapper_siftSTFByMisfit": TaskTypeProfile(mean_runtime=20.0, mean_output=2.0),
        }

    def structure(self, rng: np.random.Generator) -> StructureSpec:
        n = int(rng.integers(self.min_width, self.max_width + 1))
        decons = [f"t{i}" for i in range(n)]
        rows: list[tuple[str, str, list[str]]] = [(d, "sG1IterDecon", []) for d in decons]
        rows.append((f"t{n}", "wrapper_siftSTFByMisfit", decons))
        return rows
