"""Epigenomics workflow recipe (Juve et al. [28]).

The USC Epigenome Center's methylation pipeline is the canonical
"multiple parallel pipelines" workflow: the input is split into lanes,
each lane's reads flow through a fixed 4-stage chain (filter -> convert ->
transform -> map), per-lane results are merged, and a global 2-task tail
(index, pileup) finishes the job:

    per lane l:  fastq_split_l -> m x (filter -> sol2sanger -> fast2bfq -> map) -> map_merge_l
    all map_merge -> maq_index -> pileup
"""

from __future__ import annotations

import numpy as np

from repro.datasets.traces import TaskTypeProfile
from repro.datasets.workflows.base import StructureSpec, WorkflowRecipe, register_recipe

__all__ = ["EpigenomicsRecipe"]


@register_recipe
class EpigenomicsRecipe(WorkflowRecipe):
    """Lanes of parallel 4-stage pipelines with per-lane and global merges."""

    name = "epigenomics"

    min_lanes, max_lanes = 2, 4
    min_pipes, max_pipes = 2, 5

    @property
    def task_types(self) -> dict[str, TaskTypeProfile]:
        return {
            "fastq_split": TaskTypeProfile(mean_runtime=8.0, mean_output=15.0),
            "filter_contams": TaskTypeProfile(mean_runtime=25.0, mean_output=12.0),
            "sol2sanger": TaskTypeProfile(mean_runtime=12.0, mean_output=12.0),
            "fast2bfq": TaskTypeProfile(mean_runtime=15.0, mean_output=10.0),
            "map": TaskTypeProfile(mean_runtime=120.0, mean_output=6.0),
            "map_merge": TaskTypeProfile(mean_runtime=20.0, mean_output=18.0),
            "maq_index": TaskTypeProfile(mean_runtime=30.0, mean_output=18.0),
            "pileup": TaskTypeProfile(mean_runtime=50.0, mean_output=10.0),
        }

    def structure(self, rng: np.random.Generator) -> StructureSpec:
        lanes = int(rng.integers(self.min_lanes, self.max_lanes + 1))
        rows: list[tuple[str, str, list[str]]] = []
        idx = 0

        def new(task_type: str, parents: list[str]) -> str:
            nonlocal idx
            name = f"t{idx}"
            idx += 1
            rows.append((name, task_type, parents))
            return name

        merges: list[str] = []
        for _ in range(lanes):
            split = new("fastq_split", [])
            pipes = int(rng.integers(self.min_pipes, self.max_pipes + 1))
            tails: list[str] = []
            for _ in range(pipes):
                a = new("filter_contams", [split])
                b = new("sol2sanger", [a])
                c = new("fast2bfq", [b])
                d = new("map", [c])
                tails.append(d)
            merges.append(new("map_merge", tails))
        index = new("maq_index", merges)
        new("pileup", [index])
        return rows
