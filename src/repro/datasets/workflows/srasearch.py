"""SRASearch workflow recipe (Fig. 9a of the paper, Rynge [33]).

SRASearch queries the INSDC Sequence Read Archives.  Fig. 9a shows ``n``
parallel 2x2 blocks — a ``prefetch`` (t_i) and a ``fasterq_dump``
(t_{n+i}) both feeding a ``search`` (t_{2n+i}) and a ``report``
(t_{3n+i}) — followed by a small aggregation tail (t0 gathers the block
outputs, t_{4n+1}/t_{4n+2} post-process, t_{4n+3} finishes):

    per block i:
        {t_i, t_{n+i}} -> t_{2n+i}
        {t_i, t_{n+i}} -> t_{3n+i}
    all {t_{2n+i}, t_{3n+i}} -> t0
    t0 -> {t_{4n+1}, t_{4n+2}} -> t_{4n+3}

The exact wiring of the tail is not fully determined by Fig. 9a; this is
our documented reading (DESIGN.md substitution #1).  What the paper's
experiments rely on — rigid, repeated per-accession blocks with a tiny
serial tail — is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.traces import TaskTypeProfile
from repro.datasets.workflows.base import StructureSpec, WorkflowRecipe, register_recipe

__all__ = ["SrasearchRecipe"]


@register_recipe
class SrasearchRecipe(WorkflowRecipe):
    """Parallel 2x2 accession blocks with an aggregation tail."""

    name = "srasearch"

    min_blocks, max_blocks = 3, 10

    @property
    def task_types(self) -> dict[str, TaskTypeProfile]:
        return {
            "prefetch": TaskTypeProfile(mean_runtime=30.0, mean_output=25.0),
            "fasterq_dump": TaskTypeProfile(mean_runtime=60.0, mean_output=35.0),
            "search": TaskTypeProfile(mean_runtime=150.0, mean_output=4.0),
            "report": TaskTypeProfile(mean_runtime=20.0, mean_output=2.0),
            "aggregate": TaskTypeProfile(mean_runtime=15.0, mean_output=5.0),
            "postprocess": TaskTypeProfile(mean_runtime=10.0, mean_output=3.0),
            "finalize": TaskTypeProfile(mean_runtime=5.0, mean_output=1.0),
        }

    def structure(self, rng: np.random.Generator) -> StructureSpec:
        n = int(rng.integers(self.min_blocks, self.max_blocks + 1))
        rows: list[tuple[str, str, list[str]]] = []
        block_outputs: list[str] = []
        for i in range(1, n + 1):
            pre, dump = f"t{i}", f"t{n + i}"
            search, report = f"t{2 * n + i}", f"t{3 * n + i}"
            rows.append((pre, "prefetch", []))
            rows.append((dump, "fasterq_dump", []))
            rows.append((search, "search", [pre, dump]))
            rows.append((report, "report", [pre, dump]))
            block_outputs += [search, report]
        rows.append(("t0", "aggregate", block_outputs))
        rows.append((f"t{4 * n + 1}", "postprocess", ["t0"]))
        rows.append((f"t{4 * n + 2}", "postprocess", ["t0"]))
        rows.append(
            (f"t{4 * n + 3}", "finalize", [f"t{4 * n + 1}", f"t{4 * n + 2}"])
        )
        return rows
