"""Blast workflow recipe (Fig. 9b of the paper).

BLAST finds regions of similarity between biological sequences.  The
workflow structure is a flat fork-join: a ``split_fasta`` task fans the
query set out to ``n`` parallel ``blastall`` tasks whose outputs are
gathered by two merge tasks (``cat_blast`` for the match records and
``cat`` for the logs):

    t0 -> t1..tn ;  t1..tn -> tn+1 ;  t1..tn -> tn+2

exactly the shape drawn in Fig. 9b.  The ``blastall`` tasks dominate the
runtime (hundreds of seconds vs. seconds for the split/merge), which is
why CPoP's pin-the-critical-path-to-one-node strategy performs poorly on
blast (Section VII-B): the critical path is a tiny fraction of the work.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.traces import TaskTypeProfile
from repro.datasets.workflows.base import StructureSpec, WorkflowRecipe, register_recipe

__all__ = ["BlastRecipe"]


@register_recipe
class BlastRecipe(WorkflowRecipe):
    """Fork-join BLAST: split -> n x blastall -> {cat_blast, cat}."""

    name = "blast"

    #: Width range for the parallel blastall stage.
    min_width, max_width = 4, 12

    @property
    def task_types(self) -> dict[str, TaskTypeProfile]:
        return {
            "split_fasta": TaskTypeProfile(mean_runtime=6.0, mean_output=12.0),
            "blastall": TaskTypeProfile(mean_runtime=320.0, mean_output=3.0),
            "cat_blast": TaskTypeProfile(mean_runtime=12.0, mean_output=6.0),
            "cat": TaskTypeProfile(mean_runtime=5.0, mean_output=2.0),
        }

    def structure(self, rng: np.random.Generator) -> StructureSpec:
        n = int(rng.integers(self.min_width, self.max_width + 1))
        rows: list[tuple[str, str, list[str]]] = [("t0", "split_fasta", [])]
        workers = [f"t{i}" for i in range(1, n + 1)]
        rows += [(w, "blastall", ["t0"]) for w in workers]
        rows.append((f"t{n + 1}", "cat_blast", list(workers)))
        rows.append((f"t{n + 2}", "cat", list(workers)))
        return rows
