"""WfCommons-style synthetic workflow recipes (Table II rows 4-12).

The paper generates its scientific-workflow task graphs with the
WfCommons Synthetic Workflow Generator [37], which produces graphs that
are *in-family* for a real application: the task-type structure is rigid
(Fig. 9) while per-instance task counts, runtimes, and I/O sizes vary
according to distributions fitted to real execution traces.

Offline we cannot use WfCommons, so each application gets a
:class:`WorkflowRecipe` (DESIGN.md substitution #1) that

* declares its task types and their :class:`TaskTypeProfile`,
* builds the application's rigid structure with randomized width
  parameters (``structure``), and
* samples task costs / dependency data sizes from the distributions
  fitted to a synthetic :class:`ExecutionTrace` — the same two-step flow
  (trace -> fit -> sample) the paper describes.

The data size of a dependency ``(t, t')`` is the output size sampled for
the producing task ``t`` (the producer writes one output which each
consumer must fetch, the convention the Pegasus traces use).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.instance import ProblemInstance
from repro.core.task_graph import TaskGraph
from repro.datasets.base import Dataset, register_dataset
from repro.datasets.traces import (
    ExecutionTrace,
    TaskTypeProfile,
    chameleon_network,
    synthetic_trace,
)
from repro.utils.rng import as_generator, derive_seed

__all__ = [
    "StructureSpec",
    "WorkflowRecipe",
    "register_recipe",
    "get_recipe",
    "list_recipes",
    "workflow_dataset",
]

#: A workflow structure: ordered (task_name, task_type, parent_names) rows.
StructureSpec = Sequence[tuple[str, str, Sequence[str]]]


class WorkflowRecipe(ABC):
    """One scientific application's structural recipe."""

    #: Dataset name as used in Table II (e.g. "blast").
    name: str = ""

    @property
    @abstractmethod
    def task_types(self) -> Mapping[str, TaskTypeProfile]:
        """Profiles for every task type the structure may emit."""

    @abstractmethod
    def structure(self, rng: np.random.Generator) -> StructureSpec:
        """The application's rigid task-type structure with random widths.

        Every parent must appear before its children (the rows are in
        topological order); every ``task_type`` must be in
        :attr:`task_types`.
        """

    # ------------------------------------------------------------------ #
    # Shared machinery
    # ------------------------------------------------------------------ #
    def trace(self, rng: int | np.random.Generator | None = None) -> ExecutionTrace:
        """A synthetic execution trace for this application.

        Deterministic per seed; the trace plays the role of the public
        WfCommons pegasus/makeflow instances (Section VII, footnote 4).
        """
        return synthetic_trace(self.name, self.task_types, rng=rng)

    def build_task_graph(
        self, rng: int | np.random.Generator | None, trace: ExecutionTrace
    ) -> TaskGraph:
        """Sample one in-family task graph.

        Structure comes from :meth:`structure`; weights are drawn from the
        per-task-type distributions fitted to ``trace``.
        """
        gen = as_generator(rng)
        spec = self.structure(gen)
        tg = TaskGraph()
        outputs: dict[str, float] = {}
        runtime_models = {t: trace.runtime_model(t) for t in trace.task_types}
        output_models = {t: trace.output_model(t) for t in trace.task_types}
        for task_name, task_type, parents in spec:
            if task_type not in runtime_models:
                raise DatasetError(
                    f"recipe {self.name!r} emitted unknown task type {task_type!r}"
                )
            cost = float(runtime_models[task_type].sample(gen))
            tg.add_task(task_name, cost)
            outputs[task_name] = float(output_models[task_type].sample(gen))
            for parent in parents:
                tg.add_dependency(parent, task_name, outputs[parent])
        return tg

    def instance(
        self,
        rng: int | np.random.Generator | None = None,
        trace: ExecutionTrace | None = None,
    ) -> ProblemInstance:
        """One problem instance: in-family graph + Chameleon-style network."""
        gen = as_generator(rng)
        trace = trace if trace is not None else self.trace(gen)
        tg = self.build_task_graph(gen, trace)
        net = chameleon_network(trace, gen)
        return ProblemInstance(net, tg, name=self.name)


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_RECIPES: dict[str, WorkflowRecipe] = {}


def register_recipe(recipe_cls: type[WorkflowRecipe]) -> type[WorkflowRecipe]:
    """Class decorator: instantiate and register a recipe, and register the
    corresponding Table II dataset generator under the same name."""
    recipe = recipe_cls()
    if not recipe.name:
        raise ValueError(f"recipe {recipe_cls.__name__} must set a name")
    if recipe.name in _RECIPES:
        raise ValueError(f"recipe {recipe.name!r} already registered")
    _RECIPES[recipe.name] = recipe

    @register_dataset(recipe.name)
    def _generator(num_instances: int = 100, rng=None, recipe=recipe) -> Dataset:
        return workflow_dataset(recipe.name, num_instances=num_instances, rng=rng)

    _generator.__name__ = f"{recipe.name}_dataset"
    _generator.__doc__ = f"100 WfCommons-style {recipe.name} instances (Table II)."
    return recipe_cls


def get_recipe(name: str) -> WorkflowRecipe:
    try:
        return _RECIPES[name]
    except KeyError:
        known = ", ".join(sorted(_RECIPES))
        raise DatasetError(f"unknown workflow recipe {name!r}; known: {known}") from None


def list_recipes() -> list[str]:
    return sorted(_RECIPES)


def workflow_dataset(
    name: str,
    num_instances: int = 100,
    rng: int | np.random.Generator | None = None,
) -> Dataset:
    """Generate a scientific-workflow dataset (Table II rows 4-12).

    Each instance pairs an in-family task graph with a Chameleon-inspired
    network (infinite link strengths — shared filesystem).  One synthetic
    trace per dataset seed underlies all instances, mirroring how the
    paper fits distributions once per application.
    """
    recipe = get_recipe(name)
    gen = as_generator(rng)
    trace = recipe.trace(np.random.default_rng(derive_seed(int(gen.integers(2**62)), "trace")))
    dataset = Dataset(name=name)
    for i in range(num_instances):
        inst = recipe.instance(gen, trace=trace).with_name(f"{name}[{i}]")
        dataset.add(inst)
    return dataset
