"""Descriptive statistics of problem instances.

Section VI-B's case study works by *inspecting* the instances PISA finds
("CPoP succeeds in this instance because it prioritizes tasks that are on
the critical path...").  These statistics quantify the structural levers
that analysis keeps reaching for: how parallel the graph is, how dominant
the critical path is, how heterogeneous the network is, and how
communication-bound the instance is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.instance import ProblemInstance
from repro.core.simulator import mean_exec_time
from repro.utils.topo import longest_path_length

__all__ = ["InstanceStats", "instance_stats"]


@dataclass(frozen=True)
class InstanceStats:
    """Structural profile of one problem instance."""

    num_tasks: int
    num_dependencies: int
    num_nodes: int
    #: Longest path length in *hops* (number of tasks on it).
    depth: int
    #: max level width / depth — >1 means more parallel than serial.
    parallelism: float
    #: Average-time critical path / total average work: 1.0 = pure chain,
    #: -> 0 for embarrassingly parallel graphs.
    critical_path_dominance: float
    #: Communication-to-computation ratio of the instance.
    ccr: float
    #: max/min node speed (1.0 = homogeneous nodes).
    speed_heterogeneity: float
    #: max/min finite link strength (1.0 = homogeneous links; inf if a
    #: zero-strength link coexists with a positive one).
    strength_heterogeneity: float

    def as_row(self) -> dict:
        return {
            "tasks": self.num_tasks,
            "deps": self.num_dependencies,
            "nodes": self.num_nodes,
            "depth": self.depth,
            "parallelism": round(self.parallelism, 3),
            "cp_dominance": round(self.critical_path_dominance, 3),
            "ccr": round(self.ccr, 3) if math.isfinite(self.ccr) else "inf",
            "speed_het": round(self.speed_heterogeneity, 3),
            "strength_het": (
                round(self.strength_heterogeneity, 3)
                if math.isfinite(self.strength_heterogeneity)
                else "inf"
            ),
        }


def instance_stats(instance: ProblemInstance) -> InstanceStats:
    """Compute the structural profile of ``instance``."""
    tg, net = instance.task_graph, instance.network
    graph = tg.graph
    n = len(tg)

    if n == 0:
        depth = 0
        parallelism = 0.0
        cp_dominance = 0.0
    else:
        # Level = longest hop-distance from any source.
        level: dict = {}
        for task in nx.topological_sort(graph):
            preds = list(graph.predecessors(task))
            level[task] = 1 + max((level[p] for p in preds), default=0)
        depth = max(level.values())
        widths = np.bincount(list(level.values()))
        parallelism = float(widths.max()) / depth

        mean_execs = {t: mean_exec_time(instance, t) for t in tg.tasks}
        total = sum(mean_execs.values())
        cp = longest_path_length(graph, mean_execs)
        cp_dominance = cp / total if total > 0 else (1.0 if n else 0.0)

    speeds = [net.speed(v) for v in net.nodes]
    speed_het = max(speeds) / min(speeds) if speeds else 1.0

    finite = [
        net.strength(u, v)
        for u, v in net.links
        if math.isfinite(net.strength(u, v))
    ]
    if not finite:
        strength_het = 1.0
    elif min(finite) == 0.0:
        strength_het = math.inf if max(finite) > 0 else 1.0
    else:
        strength_het = max(finite) / min(finite)

    return InstanceStats(
        num_tasks=n,
        num_dependencies=tg.num_dependencies,
        num_nodes=len(net),
        depth=depth,
        parallelism=parallelism,
        critical_path_dominance=cp_dominance,
        ccr=instance.ccr(),
        speed_heterogeneity=speed_het,
        strength_heterogeneity=strength_het,
    )
