"""Analysis tools: instance profiling, portfolio selection, trajectories.

The Section VI-B / VII-B companion toolkit: quantify *why* a scheduler
fails on a PISA-found instance (:mod:`instance_stats`), choose scheduler
portfolios with minimal adversarial exposure (:mod:`portfolio`), and
inspect the annealing search itself (:mod:`trajectory`).
"""

from repro.analysis.instance_stats import InstanceStats, instance_stats
from repro.analysis.portfolio import (
    PortfolioChoice,
    best_portfolio,
    portfolio_exposure,
    portfolio_table,
)
from repro.analysis.trajectory import (
    TrajectorySummary,
    restart_contributions,
    summarize_trajectory,
)

__all__ = [
    "InstanceStats",
    "instance_stats",
    "PortfolioChoice",
    "portfolio_exposure",
    "best_portfolio",
    "portfolio_table",
    "TrajectorySummary",
    "summarize_trajectory",
    "restart_contributions",
]
