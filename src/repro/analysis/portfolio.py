"""Scheduler-portfolio selection from PISA results (Section VII-B).

"It may be reasonable for a WFMS to run a set of scheduling algorithms
that best covers the different types of client scientific workflows ...
a WFMS designer might run PISA and choose the three algorithms with the
combined minimum maximum makespan ratio."

Given a pairwise PISA matrix, a portfolio's *exposure* to a baseline
scheduler is the best (minimum) adversarial ratio any member achieves
against that baseline — an adversary must beat every member at once.
The portfolio's score is its worst exposure over all baselines outside
the portfolio; :func:`best_portfolio` minimizes it.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.pisa.pisa import PairwiseResult

__all__ = ["PortfolioChoice", "portfolio_exposure", "best_portfolio", "portfolio_table"]


@dataclass(frozen=True)
class PortfolioChoice:
    members: tuple[str, ...]
    exposure: float


def portfolio_exposure(pairwise: PairwiseResult, members: Sequence[str]) -> float:
    """Worst-case exposure of ``members`` per the Section VII-B criterion.

    For each baseline b outside the portfolio, the adversary's best known
    instance inflicts ``min over m in members of ratio(m, b)`` on the
    portfolio's best member; the exposure is the max over baselines.
    Returns 1.0 when the portfolio covers every baseline (nothing outside).
    """
    if not members:
        raise ValueError("portfolio needs at least one member")
    unknown = set(members) - set(pairwise.schedulers)
    if unknown:
        raise ValueError(f"members not in the pairwise matrix: {sorted(unknown)}")
    worst = 1.0
    for baseline in pairwise.schedulers:
        if baseline in members:
            continue
        exposure = min(pairwise.ratio(m, baseline) for m in members)
        worst = max(worst, exposure)
    return worst


def best_portfolio(pairwise: PairwiseResult, size: int) -> PortfolioChoice:
    """The ``size``-member portfolio minimizing worst-case exposure.

    Exhaustive over all subsets (the scheduler pool is small: 15 choose 3
    = 455); ties break lexicographically for determinism.
    """
    if not 1 <= size <= len(pairwise.schedulers):
        raise ValueError(
            f"size must be in [1, {len(pairwise.schedulers)}], got {size}"
        )
    best: PortfolioChoice | None = None
    for members in itertools.combinations(sorted(pairwise.schedulers), size):
        exposure = portfolio_exposure(pairwise, members)
        if best is None or exposure < best.exposure:
            best = PortfolioChoice(members=members, exposure=exposure)
    assert best is not None
    return best


def portfolio_table(pairwise: PairwiseResult, max_size: int = 3) -> list[PortfolioChoice]:
    """Best portfolio of each size 1..max_size (the Section VII-B table)."""
    return [best_portfolio(pairwise, k) for k in range(1, max_size + 1)]
