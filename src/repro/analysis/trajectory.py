"""Search-trajectory analysis for PISA runs.

PISA keeps a per-iteration history (:class:`repro.pisa.AnnealingStep`);
these summaries answer the questions one asks when tuning the search:
how often were moves accepted, when did the best stop improving, and how
much did each restart contribute — the evidence behind the restart
ablation in ``benchmarks/bench_pisa_ablation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pisa.annealing import AnnealingResult
from repro.pisa.pisa import PISAResult

__all__ = ["TrajectorySummary", "summarize_trajectory", "restart_contributions"]


@dataclass(frozen=True)
class TrajectorySummary:
    """One annealing run's trajectory in numbers."""

    iterations: int
    acceptance_rate: float
    #: Iteration index of the last strict improvement of the best energy
    #: (-1 if the initial state was never improved).
    last_improvement: int
    initial_energy: float
    best_energy: float

    @property
    def improvement(self) -> float:
        if self.initial_energy == 0:
            return 1.0 if self.best_energy == 0 else float("inf")
        return self.best_energy / self.initial_energy

    @property
    def converged_early(self) -> bool:
        """True when the final quarter of the run brought no improvement."""
        if self.iterations == 0:
            return True
        return self.last_improvement < 0.75 * self.iterations


def summarize_trajectory(result: AnnealingResult) -> TrajectorySummary:
    """Summarize one :class:`AnnealingResult` (requires kept history)."""
    history = result.history
    if not history:
        return TrajectorySummary(
            iterations=result.iterations,
            acceptance_rate=0.0,
            last_improvement=-1,
            initial_energy=result.initial_energy,
            best_energy=result.best_energy,
        )
    accepted = sum(1 for step in history if step.accepted)
    last_improvement = -1
    best = result.initial_energy
    for step in history:
        if step.best_energy > best:
            best = step.best_energy
            last_improvement = step.iteration
    return TrajectorySummary(
        iterations=len(history),
        acceptance_rate=accepted / len(history),
        last_improvement=last_improvement,
        initial_energy=result.initial_energy,
        best_energy=result.best_energy,
    )


def restart_contributions(result: PISAResult) -> list[dict]:
    """Per-restart outcomes of a PISA run, best-first rank included.

    Shows how much of the final answer each restart delivered — the
    paper's 5-restart choice is justified exactly when the best restart
    is much better than the median one.
    """
    rows = []
    ranked = sorted(
        range(len(result.restart_results)),
        key=lambda i: -result.restart_results[i].best_energy,
    )
    rank_of = {idx: rank + 1 for rank, idx in enumerate(ranked)}
    for i, restart in enumerate(result.restart_results):
        summary = summarize_trajectory(restart)
        rows.append(
            {
                "restart": i,
                "rank": rank_of[i],
                "initial": restart.initial_energy,
                "best": restart.best_energy,
                "acceptance_rate": round(summary.acceptance_rate, 3),
                "last_improvement": summary.last_improvement,
            }
        )
    return rows
