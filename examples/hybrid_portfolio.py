#!/usr/bin/env python
"""Scenario: building a scheduler portfolio (the paper's future-work idea).

Section VII-B suggests a WFMS "might run PISA and choose the three
algorithms with the combined minimum maximum makespan ratio" — i.e. a
portfolio whose *best member* is never far from optimal on adversarial
instances.  This example implements that selection:

1. run a reduced pairwise PISA over a scheduler pool,
2. for every k-subset of the pool, compute the worst ratio any pool
   member can inflict on the subset's best member,
3. report the best portfolio of each size, and sanity-check it on a
   benchmark dataset (a portfolio scheduler = run all members, keep the
   best schedule — exactly how Duplex composes MinMin and MaxMin).

Run:  python examples/hybrid_portfolio.py
"""

from repro.analysis import portfolio_table
from repro.benchmarking import benchmark_dataset, format_table
from repro.datasets import generate_dataset
from repro.pisa import AnnealingConfig, PISAConfig, pairwise_comparison
from repro.schedulers import EnsembleScheduler

POOL = ["CPoP", "FastestNode", "HEFT", "MaxMin", "MinMin", "WBA"]
CONFIG = PISAConfig(
    annealing=AnnealingConfig(max_iterations=80, alpha=0.945), restarts=2
)


def main() -> None:
    print(f"pool: {', '.join(POOL)}")
    print("running pairwise PISA (reduced schedule)...")
    pairwise = pairwise_comparison(POOL, config=CONFIG, rng=0)

    # The Section VII-B criterion: for a portfolio P, its exposure to a
    # baseline b is min over members of ratio(member, b) — the adversary
    # must beat every member at once — and its score is the worst exposure
    # over baselines outside P.  repro.analysis.portfolio implements it.
    table = portfolio_table(pairwise, max_size=3)
    print()
    print(
        format_table(
            ["size", "best portfolio", "worst-case exposure"],
            [
                (len(c.members), " + ".join(c.members), f"{c.exposure:.3f}")
                for c in table
            ],
        )
    )

    # Sanity check the best 3-portfolio on a benchmark dataset by running
    # it as an actual scheduler (EnsembleScheduler = best-of-members).
    best3 = table[-1].members
    ensemble = EnsembleScheduler(members=list(best3))
    dataset = generate_dataset("chains", num_instances=20, rng=5)
    bench = benchmark_dataset(list(POOL) + [ensemble], dataset)
    wins = sum(
        1
        for inst_result in bench.per_instance
        if inst_result.ratios["Ensemble"] <= 1.0 + 1e-12
    )
    print(
        f"\nportfolio {{{', '.join(best3)}}} (as an Ensemble scheduler) achieves the "
        f"overall-best makespan on {wins}/{len(bench.per_instance)} chains instances"
    )


if __name__ == "__main__":
    main()
