#!/usr/bin/env python
"""Scenario: how robust are static schedules when reality is noisy?

The paper's Section VIII names stochastic problem instances (random task
costs, data sizes, speeds, communication strengths) as the next step for
SAGA/PISA.  This example uses the library's stochastic extension:

1. lift a scientific-workflow instance into a stochastic instance whose
   task costs follow the paper's clipped-Gaussian convention,
2. plan schedules on the *expected* instance with several algorithms,
3. replay each plan (same task-to-node mapping and per-node order) on
   sampled realizations, and
4. compare planned vs. realized makespans — which scheduler's plans
   degrade most under uncertainty?

Run:  python examples/stochastic_robustness.py
"""

from repro import get_scheduler
from repro.benchmarking import format_table
from repro.datasets.workflows import get_recipe
from repro.stochastic import ClippedGaussianRV, StochasticInstance, evaluate_robustness

SCHEDULERS = ["HEFT", "CPoP", "MinMin", "MaxMin", "FastestNode"]
RELATIVE_STD = 1.0 / 3.0  # the paper's std/mean convention
SAMPLES = 200


def main() -> None:
    # A mid-size montage instance as the planning base.
    instance = get_recipe("montage").instance(rng=0)
    print(
        f"base instance: montage, {len(instance.task_graph)} tasks on "
        f"{len(instance.network)} nodes\n"
    )

    # Task costs become clipped Gaussians centered on the sampled values;
    # everything else stays deterministic (the Chameleon network's shared
    # filesystem already removes communication noise).
    jitter = {
        task: ClippedGaussianRV(
            nominal_mean=instance.task_graph.cost(task),
            std=instance.task_graph.cost(task) * RELATIVE_STD,
            low=0.0,
        )
        for task in instance.task_graph.tasks
    }
    stochastic = StochasticInstance.from_instance(instance, jitter=jitter)

    rows = []
    for name in SCHEDULERS:
        report = evaluate_robustness(
            get_scheduler(name), stochastic, samples=SAMPLES, rng=1
        )
        rows.append(
            (
                name,
                f"{report.planned_makespan:.1f}",
                f"{report.mean:.1f}",
                f"{report.maximum:.1f}",
                f"{report.degradation:.3f}",
            )
        )
    print(
        format_table(
            ["scheduler", "planned", "realized mean", "realized max", "mean/planned"],
            rows,
        )
    )
    print(
        f"\n({SAMPLES} realizations; task costs ~ clipped N(c, c/3).)\n"
        "Schedules that pack many tasks tightly onto few nodes degrade more\n"
        "gracefully than plans whose critical path depends on one noisy task\n"
        "finishing exactly on time."
    )


if __name__ == "__main__":
    main()
