#!/usr/bin/env python
"""Quickstart: build a problem instance, schedule it, inspect the result.

This walks through the core objects of the library on the paper's own
Fig. 1 example: a 4-task diamond task graph on a 3-node heterogeneous
network.

Run:  python examples/quickstart.py
"""

from repro import Network, ProblemInstance, TaskGraph, get_scheduler, list_schedulers
from repro.benchmarking import render_gantt


def main() -> None:
    # 1. A task graph: tasks with compute costs, dependencies with data sizes.
    task_graph = TaskGraph()
    for name, cost in [("t1", 1.7), ("t2", 1.2), ("t3", 2.2), ("t4", 0.8)]:
        task_graph.add_task(name, cost)
    for src, dst, data in [
        ("t1", "t2", 0.6),
        ("t1", "t3", 0.5),
        ("t2", "t4", 1.3),
        ("t3", "t4", 1.6),
    ]:
        task_graph.add_dependency(src, dst, data)

    # 2. A complete network: node speeds and link strengths.  Under the
    # related-machines model, task t on node v runs for c(t)/s(v) and the
    # data of (t, t') crosses a link in c(t,t')/s(v,v').
    network = Network.from_speeds(
        {"v1": 1.0, "v2": 1.2, "v3": 1.5},
        strengths={("v1", "v2"): 0.5, ("v1", "v3"): 1.0, ("v2", "v3"): 1.2},
    )

    instance = ProblemInstance(network, task_graph, name="quickstart")

    # 3. Schedule it with any registered algorithm.
    print(f"Available schedulers: {', '.join(list_schedulers())}\n")
    for name in ("HEFT", "CPoP", "MinMin", "FastestNode"):
        scheduler = get_scheduler(name)
        schedule = scheduler.schedule(instance)
        schedule.validate(instance)  # raises if any Section II property fails
        print(f"{name}: makespan = {schedule.makespan:.4f}")
        print(render_gantt(schedule, width=56, node_order=list(network.nodes)))
        print()

    # 4. Every schedule knows where each task ran.
    heft = get_scheduler("HEFT").schedule(instance)
    for entry in sorted(heft, key=lambda e: e.start):
        print(
            f"  task {entry.task} on {entry.node}: "
            f"[{entry.start:.3f}, {entry.end:.3f})"
        )


if __name__ == "__main__":
    main()
