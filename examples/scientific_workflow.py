#!/usr/bin/env python
"""Scenario: choosing a scheduler for a Workflow Management System.

Section VII's motivating user is a WFMS designer who must pick scheduling
algorithms for clients running scientific workflows.  This example:

1. generates in-family synthetic workflows for two applications (blast
   and srasearch) the way the paper does (trace -> fitted distributions
   -> sampled instances),
2. benchmarks the Section VII scheduler subset at two CCRs, and
3. shows why benchmarking alone is not enough, by running a short
   application-specific PISA search that surfaces in-family instances
   where a benchmark-winning scheduler loses.

Run:  python examples/scientific_workflow.py
"""

from repro.benchmarking import benchmark_dataset, format_ratio, format_table
from repro.pisa import AnnealingConfig, AppSpecificSpace, PISAConfig

SCHEDULERS = ["CPoP", "FastestNode", "HEFT", "MinMin", "WBA"]
WORKFLOWS = ["blast", "srasearch"]
CCRS = [0.2, 2.0]

# A short annealing schedule so the example runs in ~a minute; Section VII
# uses Tmax=10, Tmin=0.1, Imax=1000, alpha=0.99 with 5 restarts.
CONFIG = PISAConfig(
    annealing=AnnealingConfig(max_iterations=60, alpha=0.93), restarts=1
)


def main() -> None:
    for workflow in WORKFLOWS:
        for ccr in CCRS:
            space = AppSpecificSpace(workflow, ccr=ccr, trace_seed=0)

            # --- traditional benchmarking -------------------------------
            dataset = space.dataset(num_instances=8, rng=1)
            bench = benchmark_dataset(SCHEDULERS, dataset)
            rows = [
                (
                    s,
                    f"{bench.summary(s).median:.3f}",
                    f"{bench.summary(s).maximum:.3f}",
                )
                for s in SCHEDULERS
            ]
            print(f"\n=== {workflow} (CCR = {ccr}) — benchmarking over 8 instances ===")
            print(format_table(["scheduler", "median ratio", "max ratio"], rows))
            best = min(SCHEDULERS, key=lambda s: bench.summary(s).median)
            print(f"benchmark winner: {best}")

            # --- adversarial view ---------------------------------------
            # How badly can the benchmark winner lose to each alternative
            # on instances from the SAME family?
            print(f"PISA (in-family, target = {best}):")
            for baseline in SCHEDULERS:
                if baseline == best:
                    continue
                result = space.run_pair(best, baseline, config=CONFIG, rng=2)
                print(
                    f"  worst {best}/{baseline} ratio found: "
                    f"{format_ratio(result.best_ratio)}"
                )

    print(
        "\nTakeaway: the benchmark winner still has in-family instances where"
        "\nit loses to alternatives — the paper's core argument for PISA."
    )


if __name__ == "__main__":
    main()
