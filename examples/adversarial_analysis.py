#!/usr/bin/env python
"""Scenario: adversarial comparison of two schedulers with PISA.

Reproduces the Section VI-B workflow in miniature: search for instances
where HEFT maximally under-performs CPoP and vice versa, then inspect the
discovered instances to understand *why* each algorithm fails — the
analysis loop the paper argues benchmarking cannot provide.

Run:  python examples/adversarial_analysis.py
"""

from repro import get_scheduler
from repro.benchmarking import render_gantt
from repro.pisa import PISA, AnnealingConfig, PISAConfig, random_chain_instance


def inspect(result) -> None:
    instance = result.best_instance
    print(f"\nbest ratio {result.best_ratio:.3f} on instance with:")
    print(
        "  tasks: "
        + ", ".join(
            f"{t}(c={instance.task_graph.cost(t):.2f})" for t in instance.task_graph.tasks
        )
    )
    print(
        "  deps:  "
        + (
            ", ".join(
                f"{u}->{v}(d={instance.task_graph.data_size(u, v):.2f})"
                for u, v in instance.task_graph.dependencies
            )
            or "(none)"
        )
    )
    print(
        "  nodes: "
        + ", ".join(
            f"{v}(s={instance.network.speed(v):.2f})" for v in instance.network.nodes
        )
    )
    for name in (result.target, result.baseline):
        schedule = get_scheduler(name).schedule(instance)
        print(f"\n  {name} (makespan {schedule.makespan:.3f}):")
        for line in render_gantt(schedule, width=48).splitlines():
            print("  " + line)


def main() -> None:
    # The paper's annealing parameters are Tmax=10, Tmin=0.1, Imax=1000,
    # alpha=0.99 with 5 restarts; this demo shortens the schedule.
    config = PISAConfig(
        annealing=AnnealingConfig(t_max=10, t_min=0.1, max_iterations=300, alpha=0.985),
        restarts=3,
    )

    print("=== searching for instances where HEFT loses to CPoP ===")
    finder = PISA("HEFT", "CPoP", config=config, initial_factory=random_chain_instance)
    inspect(finder.run(rng=0))

    print("\n=== searching for instances where CPoP loses to HEFT ===")
    finder = PISA("CPoP", "HEFT", config=config, initial_factory=random_chain_instance)
    inspect(finder.run(rng=0))

    print(
        "\nEach direction finds instances the other scheduler handles better —"
        "\nneither algorithm dominates (the paper's Fig. 4 observation)."
    )


if __name__ == "__main__":
    main()
