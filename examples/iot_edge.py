#!/usr/bin/env python
"""Scenario: placing an IoT streaming dataflow on an edge/fog/cloud network.

The paper's IoT datasets (etl, predict, stats, train) pair RIoTBench-style
operator DAGs with three-tier networks: many slow edge nodes (speed 1), a
few fog nodes (speed 6), and some fast cloud nodes (speed 50), with tiered
link strengths.  The interesting tension: cloud nodes are 50x faster but
everything must cross slow uplinks to reach them.

This example builds each application, schedules it with several
algorithms, and shows where each scheduler places the work (edge vs fog
vs cloud) — making the over-parallelization failure mode the paper keeps
finding very concrete.

Run:  python examples/iot_edge.py
"""

from collections import Counter

from repro import ProblemInstance, get_scheduler
from repro.benchmarking import format_table
from repro.datasets import IOT_APPLICATIONS, edge_fog_cloud_network, iot_task_graph

SCHEDULERS = ["HEFT", "CPoP", "MCT", "ETF", "OLB", "FastestNode"]


def tier_of(node: str) -> str:
    for tier in ("edge", "fog", "cloud"):
        if str(node).startswith(tier):
            return tier
    raise ValueError(node)


def main() -> None:
    # Keep the network small enough to eyeball (the paper uses 75-125 edge
    # nodes; the structure of the placement decision is identical).
    network = edge_fog_cloud_network(
        rng=7, edge_range=(6, 6), fog_range=(3, 3), cloud_range=(2, 2)
    )
    print(
        f"network: {len(network)} nodes "
        f"({Counter(tier_of(n) for n in network.nodes).most_common()})\n"
    )

    for app in IOT_APPLICATIONS:
        task_graph = iot_task_graph(app, rng=11)
        instance = ProblemInstance(network, task_graph, name=app)
        rows = []
        for name in SCHEDULERS:
            schedule = get_scheduler(name).schedule(instance)
            schedule.validate(instance)
            placement = Counter(tier_of(e.node) for e in schedule)
            rows.append(
                (
                    name,
                    f"{schedule.makespan:.3f}",
                    placement.get("edge", 0),
                    placement.get("fog", 0),
                    placement.get("cloud", 0),
                )
            )
        print(f"=== {app} ({len(task_graph)} operator tasks) ===")
        print(format_table(["scheduler", "makespan", "edge", "fog", "cloud"], rows))
        print()

    print(
        "Note how ETF and OLB scatter tasks across slow edge nodes (they\n"
        "ignore node speeds / execution times), while completion-time-based\n"
        "schedulers concentrate the pipeline on fog/cloud nodes."
    )


if __name__ == "__main__":
    main()
