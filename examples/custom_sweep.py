#!/usr/bin/env python
"""Custom sweep: define an experiment as data, run it, resume it.

The library's experiments are all declarative `SweepSpec`s executed by
one runner.  This example builds a scenario the paper never ran — an
adversarial search between MaxMin and WBA restricted to the montage
workflow family — runs it with a checkpoint directory, then "kills" the
run, resumes it, and shows the results are identical.  The same spec
serialized to JSON works with the CLI:

    python -m repro sweep run my-sweep.json --jobs 4 --run-dir runs/my-sweep

Run:  python examples/custom_sweep.py
"""

import tempfile
from pathlib import Path

from repro.pisa import AnnealingConfig, PISAConfig
from repro.sweeps import SourceSpec, SweepSpec, run_sweep

SPEC = SweepSpec(
    name="maxmin-vs-wba-on-montage",
    mode="pisa",
    pairs=(("MaxMin", "WBA"), ("WBA", "MaxMin")),
    source=SourceSpec("workflow", {"workflow": "montage", "ccr": 2.0}),
    config=PISAConfig(
        annealing=AnnealingConfig(max_iterations=40, alpha=0.9), restarts=2
    ),
    seed=11,
    description="does MaxMin ever beat WBA on montage-shaped instances?",
)


def main() -> None:
    # The spec round-trips losslessly through JSON — this string is
    # exactly what `repro sweep run` consumes.
    print("spec as JSON:\n")
    print(SPEC.to_json())
    assert SweepSpec.from_json(SPEC.to_json()) == SPEC

    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"
        first = run_sweep(SPEC, jobs=2, run_dir=run_dir)
        print(first.report, "\n")

        # Simulate an interrupt: throw away all but one completed unit,
        # then resume.  Only the missing units re-execute, and the matrix
        # is bit-identical (each unit owns its own spawned RNG stream).
        units = run_dir / "units.jsonl"
        units.write_text(units.read_text().splitlines()[0] + "\n")
        resumed = run_sweep(SPEC, jobs=2, run_dir=run_dir, resume=True)
        for pair, result in first.pairwise.results.items():
            assert resumed.pairwise.results[pair].restart_ratios == result.restart_ratios
        print("resumed run matches the uninterrupted one, as promised")

    worst = max(
        first.pairwise.results.values(), key=lambda r: r.best_ratio
    )
    print(
        f"\nworst case found: {worst.target} is {worst.best_ratio:.2f}x worse "
        f"than {worst.baseline} on an adversarial montage instance"
    )


if __name__ == "__main__":
    main()
